// Package service is the long-lived query-serving layer over the join
// library: a Service owns a bounded registry of named graphs and, per
// (graph, params, d, relabel-mode) configuration, a session holding the
// shared resources that make cross-request reuse safe and worthwhile — a
// dht.EnginePool (engines and batch engines recycled across requests), a
// concurrency-safe score-column memo, the cached locality relabeling, and an
// LRU of recent top-k results. A per-request admission controller caps the
// total worker goroutines in flight, so concurrent requests cannot
// oversubscribe GOMAXPROCS.
//
// Results are bit-identical to the corresponding one-shot dhtjoin calls:
// the service resolves defaults exactly as dhtjoin.Options does, worker
// count and batch width never change a result (ties break on the canonical
// pair key), memo-served columns are byte-for-byte the columns a fresh walk
// would produce, and the result LRU stores exactly what the join returned.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/join2"
	"repro/internal/measure"
	"repro/internal/plan"
	"repro/internal/rankjoin"
	"repro/internal/store"
)

// Config sizes the service. The zero value selects the defaults.
type Config struct {
	// MaxGraphs bounds the graph registry; Load fails when full (graphs pin
	// O(|V|+|E|) memory each, so eviction behind a serving client's back
	// would be worse than an explicit error). Default 16.
	MaxGraphs int

	// MaxSessions bounds the per-configuration session cache; least
	// recently used sessions (their pool, memo, and result cache) are
	// evicted. Default 32.
	MaxSessions int

	// ResultCacheSize is each session's LRU capacity of recent top-k
	// results. 0 selects 128; negative disables result caching.
	ResultCacheSize int

	// MemoSize is each session's score-column memo capacity. 0 selects 256
	// (sharded; see dht.NewScoreMemo); negative disables the memo.
	MemoSize int

	// MaxConcurrency caps the total join workers in flight across all
	// concurrent requests (the admission controller grants each request
	// between 1 and its resolved worker count). 0 selects GOMAXPROCS.
	MaxConcurrency int

	// TenantInFlight caps how many requests of one tenant may hold admission
	// tokens at once; further requests of that tenant wait even while tokens
	// are free, so one tenant cannot monopolize the worker pool. 0 selects
	// MaxConcurrency (no per-tenant limit beyond the global one).
	TenantInFlight int

	// TenantQueue caps how many requests of one tenant may wait for
	// admission; beyond it, requests fail fast with ErrQuotaExceeded.
	// 0 selects 32.
	TenantQueue int

	// DefaultBudget is the wall-clock deadline budget applied to queries that
	// do not carry their own (Query.Budget). 0 means no default budget.
	DefaultBudget time.Duration

	// MaxBudget caps every query's budget, including queries with none.
	// 0 means no cap.
	MaxBudget time.Duration

	// ShedQueue is the admission-waiter count at which the HTTP layer starts
	// shedding load by clamping demanded k toward cached or cheap prefixes
	// (shedding engages only when no tokens are free AND at least ShedQueue
	// requests are already waiting). 0 selects 8; negative disables shedding.
	ShedQueue int

	// ShedK is the k that over-demanding batch requests are clamped to while
	// shedding (when no cached prefix can serve them). 0 selects 16.
	ShedK int

	// StreamWriteTimeout bounds each NDJSON line write of a streaming HTTP
	// response, so one stalled reader cannot pin pooled engines and admission
	// tokens forever. 0 selects 30s; negative disables the per-write deadline.
	StreamWriteTimeout time.Duration

	// Fault, when non-nil, injects faults (errors, latency, panics) at the
	// service's instrumented sites — engine checkout, walk rounds, response
	// writes. Test-only; nil (the default) is a strict no-op.
	Fault *fault.Injector

	// Store, when non-nil, makes the registry durable: loads write a
	// checksummed snapshot, edge updates append to a per-graph WAL, and drops
	// remove the on-disk state. It also changes MaxGraphs from a hard limit
	// into a residency bound — a full registry evicts the least recently used
	// graph from memory only (its durable state stays on disk and reloads
	// transparently on next use) instead of failing the load.
	Store *store.Store

	// Router, when non-nil, may claim 2-way join requests for cluster
	// scatter before local resolution (see Router). Requests under a
	// WithoutRouting context always evaluate locally.
	Router Router
}

const (
	defaultTenantQueue  = 32
	defaultShedQueue    = 8
	defaultShedK        = 16
	defaultWriteTimeout = 30 * time.Second
)

func (c Config) withDefaults() Config {
	// MaxGraphs, MaxSessions, and MaxConcurrency have no meaningful
	// "disabled" state (the service needs at least one of each), so any
	// value below 1 selects the default rather than, say, wedging the
	// session LRU eviction on an empty order slice. ResultCacheSize and
	// MemoSize keep their documented negative-disables convention.
	if c.MaxGraphs < 1 {
		c.MaxGraphs = 16
	}
	if c.MaxSessions < 1 {
		c.MaxSessions = 32
	}
	if c.ResultCacheSize == 0 {
		c.ResultCacheSize = 128
	}
	if c.MemoSize == 0 {
		c.MemoSize = 256
	}
	if c.MaxConcurrency < 1 {
		c.MaxConcurrency = runtime.GOMAXPROCS(0)
	}
	if c.TenantInFlight < 1 {
		c.TenantInFlight = c.MaxConcurrency
	}
	if c.TenantQueue < 1 {
		c.TenantQueue = defaultTenantQueue
	}
	if c.ShedQueue == 0 {
		c.ShedQueue = defaultShedQueue
	}
	if c.ShedK < 1 {
		c.ShedK = defaultShedK
	}
	if c.StreamWriteTimeout == 0 {
		c.StreamWriteTimeout = defaultWriteTimeout
	}
	return c
}

// Query carries one request's join options; the zero value means the
// paper's defaults, resolved identically to dhtjoin.Options (DHTλ with
// λ = 0.2, ε = 1e-6, MIN aggregation, m = 50, B-IDJ-Y / PJ-i).
type Query struct {
	// Params are the DHT coefficients; zero means DHTLambda(0.2).
	Params dht.Params
	// Epsilon bounds the truncation error; zero means 1e-6. Ignored when D
	// is set.
	Epsilon float64
	// D forces the truncation depth directly.
	D int
	// Measure selects first-hit DHT (zero) or reach probabilities. When
	// MeasureName is set it is resolved from the registered kernel instead,
	// and this field is ignored.
	Measure dht.Kind
	// MeasureName selects a registered proximity measure by name ("dht",
	// "reach", "ppr", "simrank"); empty means "dht", the paper's measure.
	// An unknown name fails the request with measure.ErrUnknownMeasure.
	MeasureName string
	// Agg is the n-way aggregate; nil means Min.
	Agg rankjoin.Aggregate
	// M is the initial per-edge budget of the n-way join; zero means 50.
	M int
	// Distinct drops n-way answers repeating a node across positions.
	Distinct bool
	// Workers requests a worker count; the admission controller may grant
	// fewer (results are identical at any count). 0/1 serial, negative
	// GOMAXPROCS.
	Workers int
	// BatchWidth tunes the batched walk kernel; 0 default, 1 disables.
	BatchWidth int
	// Relabel applies the locality-aware reordering (cached per graph).
	Relabel graph.RelabelMode
	// Algorithm forces the named registered executor ("B-IDJ-Y", "B-BJ",
	// "PJ-i", "AP", …) instead of the cost-based planner's pick. Results
	// are bit-identical under any choice; an unknown name or one of the
	// wrong query class fails the request.
	Algorithm string
	// Accuracy selects the planner's kernel contract: "" or "exact" (the
	// default) restricts plans to bit-identical executors, "fast" also
	// admits the certified fast-kernel executors — same emitted ranking
	// (every answer near the cut is re-verified through the exact kernel),
	// different cost. Any other spelling fails the request.
	Accuracy string
	// Tenant attributes the request to an admission-quota bucket; empty is
	// the anonymous shared bucket. Quotas never change results — only
	// whether and when a request is admitted.
	Tenant string
	// Priority selects the admission class: PriorityInteractive (the zero
	// value) or PriorityBatch. Batch requests still make progress under
	// load, just at a lower weighted-fair share.
	Priority int
	// Budget is this query's wall-clock deadline budget; 0 defers to the
	// service's DefaultBudget. An expired budget truncates the query to the
	// ranking prefix produced so far (marked truncated) rather than failing
	// it outright.
	Budget time.Duration
}

// Priority classes for Query.Priority.
const (
	PriorityInteractive = classInteractive
	PriorityBatch       = classBatch
)

// resolve applies the defaults; it must stay in lockstep with
// dhtjoin.Options.resolve so served results are bit-identical to one-shot
// calls (the integration tests pin this). The measure kernel is resolved
// first because it owns the customary parameterization (e.g. "ppr" defaults
// zero-value params to dht.PPR(0.5) before the DHTλ(0.2) fallback applies).
func (q *Query) resolve() (measure.Kernel, dht.Params, int, rankjoin.Aggregate, int, error) {
	kern, err := measure.Lookup(q.MeasureName)
	if err != nil {
		return measure.Kernel{}, dht.Params{}, 0, nil, 0, err
	}
	p := kern.ResolveParams(q.Params)
	if p == (dht.Params{}) {
		p = dht.DHTLambda(0.2)
	}
	if err := p.Validate(); err != nil {
		return measure.Kernel{}, dht.Params{}, 0, nil, 0, err
	}
	d := q.D
	if d == 0 {
		eps := q.Epsilon
		if eps == 0 {
			eps = 1e-6
		}
		d = p.StepsForEpsilon(eps)
	}
	if d < 1 {
		return measure.Kernel{}, dht.Params{}, 0, nil, 0, fmt.Errorf("service: depth d must be >= 1, got %d", d)
	}
	agg := q.Agg
	if agg == nil {
		agg = rankjoin.Min
	}
	m := q.M
	if m == 0 {
		m = 50
	}
	if m < 0 {
		return measure.Kernel{}, dht.Params{}, 0, nil, 0, fmt.Errorf("service: m must be >= 0, got %d", m)
	}
	return kern, p, d, agg, m, nil
}

// applyKernel normalizes the query's measure fields from the resolved
// kernel: an explicit measure name fixes the walk kind (so "ppr" folds reach
// probabilities regardless of the legacy Measure field, while a zero-valued
// MeasureName keeps honoring a caller-set Measure kind), and the name is
// canonicalized so "" and "dht" share cache and session keys.
func (q *Query) applyKernel(kern measure.Kernel) {
	if q.MeasureName != "" && kern.WalkBased {
		q.Measure = kern.Walk
	}
	q.MeasureName = kern.Name
}

// accuracy resolves the planner's kernel-contract knob.
func (q *Query) accuracy() (plan.Accuracy, error) {
	return plan.ParseAccuracy(q.Accuracy)
}

// SetRef names the node set of one join position: either a set declared by
// the loaded graph (Name) or an explicit node list (IDs). Exactly one must
// be set.
type SetRef struct {
	Name string
	IDs  []graph.NodeID
}

// GraphInfo describes one registry entry.
type GraphInfo struct {
	Name  string   `json:"name"`
	Nodes int      `json:"nodes"`
	Edges int      `json:"edges"`
	Sets  []string `json:"sets"`

	// Generation counts the graph's durable state changes (snapshot base +
	// WAL records with a store attached; a plain in-memory edit counter
	// without one). 0 until the graph is first edited or persisted.
	Generation uint64 `json:"generation,omitempty"`
	// Evicted marks a persisted graph not currently resident in memory; it
	// reloads transparently on first use.
	Evicted bool `json:"evicted,omitempty"`
}

// Stats is a snapshot of the service's monotone work counters plus the
// registry/session gauges.
type Stats struct {
	Graphs   int `json:"graphs"`   // gauge: loaded graphs
	Sessions int `json:"sessions"` // gauge: live sessions

	Join2Requests int64 `json:"join2_requests"`
	JoinNRequests int64 `json:"joinn_requests"`
	ScoreRequests int64 `json:"score_requests"`

	ResultHits   int64 `json:"result_hits"`
	ResultMisses int64 `json:"result_misses"`
	MemoHits     int64 `json:"memo_hits"`
	MemoMisses   int64 `json:"memo_misses"`

	// Planner surface: decisions made, plan-cache hits, and how often each
	// executor was picked for execution (forced picks included).
	PlanRequests  int64            `json:"plan_requests"`
	PlanCacheHits int64            `json:"plan_cache_hits"`
	PlanPicks     map[string]int64 `json:"plan_picks,omitempty"`

	// MeasureQueries counts join/score queries per resolved measure name
	// ("dht", "ppr", "simrank", …) — the serving-side view of the measure
	// registry.
	MeasureQueries map[string]int64 `json:"measure_queries,omitempty"`

	Walks         int64 `json:"walks"`
	EdgeSweeps    int64 `json:"edge_sweeps"`
	FrontierEdges int64 `json:"frontier_edges"`

	// Certified fast-kernel surface: runs that executed on the fast kernel,
	// pairs re-verified through the bit-identical kernel, and the re-verify
	// excess over the demanded k (band pairs rescored beyond what was
	// emitted — the price of certification near ties).
	KernelPicks   int64 `json:"kernel_picks"`
	Reverified    int64 `json:"reverified"`
	FallbackPairs int64 `json:"fallback_pairs"`

	// Hardening surface: quota rejections, budget truncations, shed clamps,
	// and recovered panics are monotone counters; the admission gauges and
	// the drain flag describe the instantaneous load state.
	QuotaRejections   int64 `json:"quota_rejections"`
	BudgetTruncations int64 `json:"budget_truncations"`
	ShedClamps        int64 `json:"shed_clamps"`
	PanicsRecovered   int64 `json:"panics_recovered"`
	AdmissionFree     int   `json:"admission_free"`
	AdmissionWaiting  int   `json:"admission_waiting"`
	Draining          bool  `json:"draining"`

	// Durability surface: edge-update requests served, the store's
	// persistence counters (WAL appends, snapshots, recovery outcomes —
	// present only with a store attached), and each persisted graph's
	// current generation. A warm Generations map right after boot is how an
	// operator confirms recovery repopulated the registry; non-zero
	// WALTruncations or SnapshotFallbacks inside Persistence mean recovery
	// degraded a graph to its last consistent state.
	EdgeUpdates int64             `json:"edge_updates,omitempty"`
	Persistence *store.Counters   `json:"persistence,omitempty"`
	Generations map[string]uint64 `json:"generations,omitempty"`

	// Cluster surface: present only with a Router configured — scatter
	// queries coordinated, shard streams opened/early-stopped, failovers,
	// and placement traffic (see RouterStats).
	Cluster *RouterStats `json:"cluster,omitempty"`
}

// relabeledGraph pairs a reordered graph with its id map.
type relabeledGraph struct {
	g *graph.Graph
	r *graph.Relabeling
}

// graphEntry is one registry slot.
type graphEntry struct {
	g    *graph.Graph
	sets map[string]*graph.NodeSet
	gen  uint64 // durable generation (see GraphInfo.Generation)

	mu        sync.Mutex
	relabeled map[graph.RelabelMode]*relabeledGraph // built once per mode
}

// relabeledFor returns the cached reordering, building it on first use. The
// build runs under the entry lock: concurrent first requests for one mode
// must not both pay the O(|E| log |E|) rebuild, and later requests hit the
// map without rebuilding.
func (ge *graphEntry) relabeledFor(mode graph.RelabelMode) *relabeledGraph {
	if mode == graph.NoRelabel {
		return &relabeledGraph{g: ge.g}
	}
	ge.mu.Lock()
	defer ge.mu.Unlock()
	if rl, ok := ge.relabeled[mode]; ok {
		return rl
	}
	rg, r := graph.Relabel(ge.g, mode)
	rl := &relabeledGraph{g: rg, r: r}
	if ge.relabeled == nil {
		ge.relabeled = make(map[graph.RelabelMode]*relabeledGraph, 2)
	}
	ge.relabeled[mode] = rl
	return rl
}

// sessionKey identifies one shared-resource session. The graph pointer (not
// the registry name) keys it, so reloading a name invalidates naturally and
// two names sharing a graph share a session. The canonical measure name is a
// key dimension: a measure's memoized state (result prefixes, plan
// decisions, calibration) must never serve another measure's queries.
type sessionKey struct {
	g       *graph.Graph
	params  dht.Params
	d       int
	relabel graph.RelabelMode
	measure string
}

// session owns the shared per-configuration resources.
type session struct {
	g       *graph.Graph      // possibly relabeled
	rl      *graph.Relabeling // nil when not relabeled
	pool    *dht.EnginePool   // engines + batch engines, recycled across requests
	memo    *dht.ScoreMemo    // concurrency-safe score columns
	results *resultLRU        // recent top-k results, original id space
	plans   *planCache        // planner decisions, keyed like the result LRU (+k)
	calib   *plan.Calibration // observed-cost feedback from bit-identical runs
	// calibFast is the fast-kernel bucket: calibration is keyed by kernel
	// contract because the certified executors mix cheap float32-lane
	// sweeps with exact rescores — folding their counters into the exact
	// bucket would skew the cost unit every exact plan is priced with.
	calibFast *plan.Calibration
}

// calibFor selects the session's calibration bucket for a kernel contract.
func (sess *session) calibFor(certified bool) *plan.Calibration {
	if certified {
		return sess.calibFast
	}
	return sess.calib
}

// Service is the concurrent query-serving subsystem. All methods are safe
// for concurrent use.
type Service struct {
	cfg Config

	mu           sync.Mutex
	graphs       map[string]*graphEntry
	graphOrder   []string // most recently used last; drives store-backed eviction
	sessions     map[sessionKey]*session
	sessionOrder []sessionKey // most recently used last

	store  *store.Store // nil without persistence
	editMu sync.Mutex   // serializes edge updates (read-modify-write + WAL append)

	adm      *admission
	counters dht.Counters // lifetime engine work, fed by every session pool
	draining atomic.Bool  // set once by StartDrain; never cleared

	join2Reqs, joinNReqs, scoreReqs    atomic.Int64
	resultHits, resultMisses           atomic.Int64
	retiredMemoHits, retiredMemoMisses atomic.Int64 // from evicted sessions
	planReqs, planCacheHits            atomic.Int64
	budgetTruncs, shedClamps, panics   atomic.Int64
	edgeUpdates                        atomic.Int64

	picksMu sync.Mutex
	picks   map[string]int64 // executions per chosen executor name

	measureMu      sync.Mutex
	measureQueries map[string]int64 // queries per resolved measure name
}

// New returns a Service sized by cfg (zero value = defaults).
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	return &Service{
		cfg:      cfg,
		store:    cfg.Store,
		graphs:   make(map[string]*graphEntry),
		sessions: make(map[sessionKey]*session),
		adm:      newAdmission(cfg.MaxConcurrency, cfg.TenantInFlight, cfg.TenantQueue),
		picks:    make(map[string]int64),

		measureQueries: make(map[string]int64),
	}
}

// StartDrain moves the service into graceful drain: every subsequent query
// entry point fails fast with ErrDraining while already-open streams keep
// running to completion (or until their contexts are cancelled by the
// caller's drain budget). Idempotent; drain is one-way.
func (s *Service) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Service) Draining() bool { return s.draining.Load() }

// admitGate is the shared fail-fast check at every query entry point.
func (s *Service) admitGate() error {
	if s.draining.Load() {
		return ErrDraining
	}
	return nil
}

// Shedding reports whether the service is overloaded enough that the HTTP
// layer should degrade demanded k: no admission tokens free and at least
// ShedQueue requests already waiting. Purely advisory — shedding never
// changes the scores of what is served, only how much of the ranking is.
func (s *Service) Shedding() bool {
	if s.cfg.ShedQueue < 0 {
		return false
	}
	free, waiting, _ := s.adm.snapshot()
	return free == 0 && waiting >= s.cfg.ShedQueue
}

// ShedK returns the k that over-demanding requests degrade to while shedding.
func (s *Service) ShedK() int { return s.cfg.ShedK }

// WriteTimeout returns the per-line write deadline for streaming responses
// (0 means disabled).
func (s *Service) WriteTimeout() time.Duration {
	if s.cfg.StreamWriteTimeout < 0 {
		return 0
	}
	return s.cfg.StreamWriteTimeout
}

// notePanic counts one recovered panic (stream pulls and HTTP handlers).
func (s *Service) notePanic() { s.panics.Add(1) }

// budgetContext applies the query's resolved wall-clock budget to ctx,
// installing ErrBudgetExceeded as the cancellation cause so budget expiry is
// distinguishable from a client cancel. The returned cancel must always be
// called. With no budget configured the context passes through unchanged.
func (s *Service) budgetContext(ctx context.Context, q *Query) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	b := q.Budget
	if b <= 0 {
		b = s.cfg.DefaultBudget
	}
	if s.cfg.MaxBudget > 0 && (b <= 0 || b > s.cfg.MaxBudget) {
		b = s.cfg.MaxBudget
	}
	if b <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeoutCause(ctx, b, ErrBudgetExceeded)
}

// planFor runs the planner for one request through the session's plan
// cache: cached decisions are reused while the calibration generation they
// were stamped with still holds, so a session recalibrated by observed
// counters re-plans with the fresh cost unit. Forced algorithms skip the
// cache (validation is the whole cost).
func (s *Service) planFor(sess *session, class plan.Class, baseKey string, k int, w plan.Workload, forced string) (*plan.Plan, error) {
	s.planReqs.Add(1)
	// Fast-accuracy plans are priced (and their cache entries validated)
	// with the fast-kernel calibration bucket; the contract the executed
	// stream actually ran under decides which bucket its counters feed.
	cal := sess.calibFor(w.Accuracy == plan.Fast)
	w.Calib = cal
	if forced != "" {
		return plan.Decide(class, w, forced)
	}
	var key string
	var gen uint64
	if baseKey != "" {
		// baseKey embeds the accuracy mode (queryKey), so exact and fast
		// decisions never alias one cache slot.
		key = fmt.Sprintf("%s|plan-k=%d", baseKey, k)
		gen = cal.Gen()
		if pl, ok := sess.plans.get(key, gen); ok {
			s.planCacheHits.Add(1)
			return pl, nil
		}
	}
	pl, err := plan.Decide(class, w, "")
	if err != nil {
		return nil, err
	}
	if key != "" {
		sess.plans.put(key, gen, pl)
	}
	return pl, nil
}

// recordPick counts one execution of the chosen executor.
func (s *Service) recordPick(name string) {
	s.picksMu.Lock()
	s.picks[name]++
	s.picksMu.Unlock()
}

// recordMeasure counts one query against the resolved measure.
func (s *Service) recordMeasure(name string) {
	s.measureMu.Lock()
	s.measureQueries[name]++
	s.measureMu.Unlock()
}

// LoadGraph registers g under name with its node sets. Loading an existing
// name replaces it (old sessions die with their graph pointer). With a store
// attached the graph is made durable first — the load fails without changing
// served state if the snapshot cannot be written — and a full registry
// evicts its least recently used resident instead of failing; without one,
// loading a new name into a full registry fails.
func (s *Service) LoadGraph(name string, g *graph.Graph, sets []*graph.NodeSet) error {
	if name == "" {
		return fmt.Errorf("service: graph name must be non-empty")
	}
	if g == nil {
		return fmt.Errorf("service: nil graph")
	}
	byName := make(map[string]*graph.NodeSet, len(sets))
	for _, set := range sets {
		if err := set.Validate(g); err != nil {
			return err
		}
		byName[set.Name] = set
	}
	var gen uint64
	if s.store != nil {
		var err error
		if gen, err = s.store.Put(name, g, sets); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old, replacing := s.graphs[name]
	if !replacing && len(s.graphs) >= s.cfg.MaxGraphs {
		if s.store == nil {
			return fmt.Errorf("service: graph registry full (%d); drop one first", s.cfg.MaxGraphs)
		}
		s.evictGraphLocked(name)
	}
	s.graphs[name] = &graphEntry{g: g, sets: byName, gen: gen}
	s.touchGraphLocked(name)
	if replacing {
		s.purgeSessionsLocked(old.g)
	}
	return nil
}

// LoadGraphText reads a text-format graph (with node sets) and registers it,
// returning the registered entry's description. The info is computed from the
// parsed graph itself — not from a post-load registry lookup — so a
// concurrent DropGraph or replacing load cannot make a successful load look
// like the graph vanished.
func (s *Service) LoadGraphText(name string, r io.Reader) (GraphInfo, error) {
	g, sets, err := graph.ReadText(r)
	if err != nil {
		return GraphInfo{}, err
	}
	if err := s.LoadGraph(name, g, sets); err != nil {
		return GraphInfo{}, err
	}
	info := GraphInfo{Name: name, Nodes: g.NumNodes(), Edges: g.NumEdges()}
	if s.store != nil {
		info.Generation = s.store.Gen(name)
	}
	for _, set := range sets {
		info.Sets = append(info.Sets, set.Name)
	}
	sort.Strings(info.Sets)
	return info, nil
}

// DropGraph removes the named graph — its registry entry, its sessions, and
// (with a store attached) its on-disk state — reporting whether it existed.
// The graph stops being served even when the durable removal fails partway;
// the error is surfaced so the caller can retry the drop, and recovery
// treats a partially deleted graph as either fully present or fully absent.
func (s *Service) DropGraph(name string) (bool, error) {
	var derr error
	existed := false
	if s.store != nil && s.store.Has(name) {
		existed = true
		derr = s.store.Delete(name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ge, ok := s.graphs[name]; ok {
		existed = true
		delete(s.graphs, name)
		s.removeGraphOrderLocked(name)
		s.purgeSessionsLocked(ge.g)
	}
	return existed, derr
}

// purgeSessionsLocked drops every session keyed on g, retiring their memo
// stats so Stats counters stay monotone.
func (s *Service) purgeSessionsLocked(g *graph.Graph) {
	kept := s.sessionOrder[:0]
	for _, key := range s.sessionOrder {
		if key.g != g {
			kept = append(kept, key)
			continue
		}
		s.retireSessionLocked(key)
	}
	s.sessionOrder = kept
}

// retireSessionLocked removes one session, folding its memo counters into
// the retired accumulators.
func (s *Service) retireSessionLocked(key sessionKey) {
	if sess, ok := s.sessions[key]; ok {
		s.retiredMemoHits.Add(sess.memo.Hits())
		s.retiredMemoMisses.Add(sess.memo.Misses())
		delete(s.sessions, key)
	}
}

// Graphs lists the registry sorted by name — resident graphs plus any
// persisted graphs currently evicted from memory (marked Evicted; they
// reload on first use).
func (s *Service) Graphs() []GraphInfo {
	s.mu.Lock()
	out := make([]GraphInfo, 0, len(s.graphs))
	for name, ge := range s.graphs {
		info := GraphInfo{Name: name, Nodes: ge.g.NumNodes(), Edges: ge.g.NumEdges(), Generation: ge.gen}
		for sn := range ge.sets {
			info.Sets = append(info.Sets, sn)
		}
		sort.Strings(info.Sets)
		out = append(out, info)
	}
	resident := make(map[string]bool, len(s.graphs))
	for name := range s.graphs {
		resident[name] = true
	}
	s.mu.Unlock()
	if s.store != nil {
		for _, name := range s.store.Names() {
			if resident[name] {
				continue
			}
			nodes, edges, gen, sets, ok := s.store.Info(name)
			if !ok {
				continue
			}
			out = append(out, GraphInfo{Name: name, Nodes: nodes, Edges: edges, Sets: sets, Generation: gen, Evicted: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// graphFor resolves a registry name, lazily reloading a persisted graph that
// was evicted from memory.
func (s *Service) graphFor(name string) (*graphEntry, error) {
	s.mu.Lock()
	if ge, ok := s.graphs[name]; ok {
		s.touchGraphLocked(name)
		s.mu.Unlock()
		return ge, nil
	}
	s.mu.Unlock()
	if s.store == nil || !s.store.Has(name) {
		return nil, fmt.Errorf("service: no graph %q loaded", name)
	}
	return s.reloadGraph(name)
}

// sessionFor returns (creating if needed) the shared session for the
// resolved configuration, refreshing its LRU recency.
func (s *Service) sessionFor(ge *graphEntry, params dht.Params, d int, mode graph.RelabelMode, measureName string) (*session, error) {
	key := sessionKey{g: ge.g, params: params, d: d, relabel: mode, measure: measureName}
	s.mu.Lock()
	if sess, ok := s.sessions[key]; ok {
		s.touchSessionLocked(key)
		s.mu.Unlock()
		return sess, nil
	}
	s.mu.Unlock()

	// Build outside the lock: the relabel rebuild is O(|E| log |E|).
	rl := ge.relabeledFor(mode)
	pool, err := dht.NewEnginePool(rl.g, params, d)
	if err != nil {
		return nil, err
	}
	pool.Sink = &s.counters
	sess := &session{
		g:         rl.g,
		rl:        rl.r,
		pool:      pool,
		memo:      newSessionMemo(s.cfg.MemoSize),
		results:   newResultLRU(s.cfg.ResultCacheSize),
		plans:     newPlanCache(planCacheCap),
		calib:     &plan.Calibration{},
		calibFast: &plan.Calibration{},
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.sessions[key]; ok {
		s.touchSessionLocked(key) // lost the build race; share the winner
		return prev, nil
	}
	// The graph may have been dropped (or replaced under its name) while the
	// session was being built lock-free. Caching the session then would pin
	// the dead graph's memory in an entry no future request can reach — the
	// request in flight still gets its session, it just isn't retained.
	if !s.graphLiveLocked(ge.g) {
		return sess, nil
	}
	if len(s.sessionOrder) >= s.cfg.MaxSessions {
		oldest := s.sessionOrder[0]
		s.sessionOrder = s.sessionOrder[1:]
		s.retireSessionLocked(oldest)
	}
	s.sessions[key] = sess
	s.sessionOrder = append(s.sessionOrder, key)
	return sess, nil
}

// graphLiveLocked reports whether g still backs a registry entry (caller
// holds s.mu). O(MaxGraphs), which is small by construction.
func (s *Service) graphLiveLocked(g *graph.Graph) bool {
	for _, ge := range s.graphs {
		if ge.g == g {
			return true
		}
	}
	return false
}

// touchSessionLocked moves key to the MRU position (caller holds s.mu and
// has verified presence).
func (s *Service) touchSessionLocked(key sessionKey) {
	for i, k := range s.sessionOrder {
		if k == key {
			copy(s.sessionOrder[i:], s.sessionOrder[i+1:])
			s.sessionOrder[len(s.sessionOrder)-1] = key
			return
		}
	}
}

// newSessionMemo builds a session memo honoring the disable convention.
func newSessionMemo(size int) *dht.ScoreMemo {
	if size < 0 {
		return nil
	}
	return dht.NewScoreMemo(size)
}

// resolveSet maps a SetRef to node ids in the entry's graph.
func (ge *graphEntry) resolveSet(ref SetRef) ([]graph.NodeID, error) {
	switch {
	case ref.Name != "" && ref.IDs != nil:
		return nil, fmt.Errorf("service: set ref must have either a name or ids, not both")
	case ref.Name != "":
		set, ok := ge.sets[ref.Name]
		if !ok {
			return nil, fmt.Errorf("service: graph declares no node set %q", ref.Name)
		}
		return set.Nodes(), nil
	case len(ref.IDs) > 0:
		n := ge.g.NumNodes()
		for _, id := range ref.IDs {
			if id < 0 || int(id) >= n {
				return nil, fmt.Errorf("service: node %d out of range [0,%d)", id, n)
			}
		}
		return ref.IDs, nil
	}
	return nil, fmt.Errorf("service: empty set ref")
}

// refKey serializes a SetRef for the result-cache key. Explicit id lists are
// written in full — a hashed key could collide and silently serve another
// request's results — and names are length-prefixed for the same reason:
// set names are caller-chosen strings, so a name containing the key
// delimiters could otherwise alias a different request's key.
func refKey(sb *strings.Builder, ref SetRef) {
	if ref.Name != "" {
		fmt.Fprintf(sb, "n%d:%s", len(ref.Name), ref.Name)
		return
	}
	fmt.Fprintf(sb, "i%d:", len(ref.IDs))
	for _, id := range ref.IDs {
		sb.WriteString(strconv.Itoa(int(id)))
		sb.WriteByte(',')
	}
}

// queryKey serializes the parts of a resolved query shared by all ops.
// Accuracy is part of the key even though certified plans emit the same
// ranking: the plan cache is keyed off this string, and an exact-accuracy
// request must never be served a plan whose eligibility set included the
// certified executors (or vice versa).
func queryKey(sb *strings.Builder, params dht.Params, d int, q *Query, acc plan.Accuracy) {
	fmt.Fprintf(sb, "|p=%v,%v,%v|d=%d|ms=%d|mn=%s|acc=%s", params.Alpha, params.Beta, params.Lambda, d, q.Measure, q.MeasureName, acc)
}

// join2Req is one resolved 2-way request: registry entry, session, node
// sets (original id space), resolved parameters, and the prefix-cache key.
type join2Req struct {
	svc    *Service
	sess   *session
	pn, qn []graph.NodeID
	params dht.Params
	d      int
	m      int // resolved per-edge budget: the default initial stream batch
	acc    plan.Accuracy
	kern   measure.Kernel
	query  Query
	key    string
}

// resolveJoin2 resolves names, sets, parameters, and the session. A forced
// algorithm is validated here, before any cache can serve the request —
// a bad hint must fail even when the ranking itself is already cached.
func (s *Service) resolveJoin2(graphName string, p, q SetRef, query Query) (*join2Req, error) {
	kern, params, d, _, m, err := query.resolve()
	if err != nil {
		return nil, err
	}
	query.applyKernel(kern)
	s.recordMeasure(kern.Name)
	acc, err := query.accuracy()
	if err != nil {
		return nil, err
	}
	if query.Algorithm != "" {
		if err := plan.ValidateForced(plan.TwoWay, query.Algorithm, kern.PlanMeasure); err != nil {
			return nil, err
		}
	}
	ge, err := s.graphFor(graphName)
	if err != nil {
		return nil, err
	}
	pn, err := ge.resolveSet(p)
	if err != nil {
		return nil, err
	}
	qn, err := ge.resolveSet(q)
	if err != nil {
		return nil, err
	}
	sess, err := s.sessionFor(ge, params, d, query.Relabel, kern.Name)
	if err != nil {
		return nil, err
	}
	// The key deliberately excludes k: the cache stores ranking prefixes,
	// and the prefix invariant makes one entry serve every k up to its
	// length.
	var sb strings.Builder
	sb.WriteString("join2|")
	refKey(&sb, p)
	sb.WriteByte('|')
	refKey(&sb, q)
	queryKey(&sb, params, d, &query, acc)
	return &join2Req{svc: s, sess: sess, pn: pn, qn: qn, params: params, d: d, m: m, acc: acc, kern: kern, query: query, key: sb.String()}, nil
}

// open acquires admission (honoring ctx) and starts the pair stream.
// initial sizes the first batch; 0 selects the resolved per-edge budget.
// batch marks a drain-exactly-initial caller (Join2): the stream then
// skips the incremental F structure — whose O(|P|·|Q|) population a caller
// that never pulls past the initial batch pays for nothing — and runs one
// plain top-k join behind a doubling re-join.
func (rq *join2Req) open(ctx context.Context, initial int, batch bool) (*Join2Stream, error) {
	if initial <= 0 {
		initial = rq.m
	}
	// Plan (or validate the forced algorithm) before admission: planning is
	// sub-microsecond against the graph's cached stats, and a rejected hint
	// must not consume admission tokens.
	pl, err := rq.svc.planFor(rq.sess, plan.TwoWay, rq.key, initial, rq.workload(initial), rq.query.Algorithm)
	if err != nil {
		return nil, err
	}
	// The budget clock starts here, covering the admission wait too: a
	// request that spends its whole budget queued is already late.
	qctx, cancel := rq.svc.budgetContext(ctx, &rq.query)
	g, err := rq.svc.adm.acquire(qctx, rq.query.Tenant, rq.query.Priority, resolveWorkers(rq.query.Workers))
	if err != nil {
		cancel()
		return nil, admitErr(qctx, err)
	}
	if err := rq.svc.cfg.Fault.Inject(fault.Checkout); err != nil {
		rq.svc.adm.release(g)
		cancel()
		return nil, err
	}
	sess := rq.sess
	// The run-scoped counters feed the session calibration on Stop and
	// forward every increment to the service's lifetime totals.
	ctrs := &dht.Counters{Chain: &rq.svc.counters}
	cfg := join2.Config{
		Graph:      sess.g,
		Params:     rq.params,
		D:          rq.d,
		P:          rq.pn,
		Q:          rq.qn,
		Measure:    rq.query.Measure,
		Workers:    g.n,
		BatchWidth: rq.query.BatchWidth,
		Pool:       sess.pool,
		Memo:       sess.memo,
		Counters:   ctrs,
		Cancel:     rq.svc.cancelPoll(qctx),
	}
	if sess.rl != nil {
		cfg.P = sess.rl.MapToNew(cfg.P)
		cfg.Q = sess.rl.MapToNew(cfg.Q)
	}
	st, err := join2.NewNamedStream(pl.Algorithm, cfg, join2.StreamSpec{Initial: initial}, batch)
	if err != nil {
		rq.svc.adm.release(g)
		cancel()
		return nil, err
	}
	rq.svc.recordPick(pl.Algorithm)
	return &Join2Stream{svc: rq.svc, ctx: qctx, cancel: cancel, sess: sess, key: rq.key, st: st, rl: sess.rl, grant: g,
		ctrs: ctrs, calib: sess.calibFor(planCertified(pl))}, nil
}

// planCertified reports whether the plan's chosen executor runs the
// certified fast kernel, looked up in the plan's own estimate table (which
// forced plans carry too).
func planCertified(pl *plan.Plan) bool {
	for _, e := range pl.Estimates {
		if e.Algorithm == pl.Algorithm {
			return e.Certified
		}
	}
	return false
}

// cancelPoll builds the joiners' walk-round cancellation hook for a query
// context: it reports the context's cause (ErrBudgetExceeded on budget
// expiry, context.Canceled on client disconnect) and doubles as the
// walk-round fault-injection site.
func (s *Service) cancelPoll(ctx context.Context) func() error {
	return func() error {
		if err := s.cfg.Fault.Inject(fault.WalkRound); err != nil {
			return err
		}
		// Cause is nil while ctx is live, so this is a pure poll.
		return context.Cause(ctx)
	}
}

// admitErr maps an admission wait that died with the context to the richer
// cancellation cause (budget expiry vs. plain cancel); quota rejections pass
// through.
func admitErr(ctx context.Context, err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		if cause := context.Cause(ctx); cause != nil {
			return cause
		}
	}
	return err
}

// workload assembles the planner's view of the request for demand k.
func (rq *join2Req) workload(k int) plan.Workload {
	return plan.Workload{
		Stats:      rq.sess.g.Stats(),
		P:          len(rq.pn),
		Q:          len(rq.qn),
		K:          k,
		M:          rq.m,
		D:          rq.d,
		Measure:    rq.kern.PlanMeasure,
		Workers:    rq.query.Workers,
		BatchWidth: rq.query.BatchWidth,
		Accuracy:   rq.acc,
	}
}

// maxCachedPrefix bounds how much of a drained ranking a stream records
// for publication to the result cache. Without a cap a single exhaustive
// stream over large sets would make the server buffer (and then pin in the
// LRU) the entire O(|P|·|Q|) ranking the client consumed line by line. A
// truncated recording still publishes a valid prefix — it just cannot
// claim the ranking is exhausted.
const maxCachedPrefix = 4096

// Join2Stream streams one 2-way join request through the session's shared
// pool and memo. It holds admission tokens and pooled engines until Stop —
// callers MUST Stop (idempotent; draining to exhaustion or a ctx error
// stops automatically). On Stop the drained prefix (up to maxCachedPrefix
// results) is published to the session's result cache, so a later request
// for any k up to that length is served without a join.
type Join2Stream struct {
	svc       *Service
	ctx       context.Context
	cancel    context.CancelFunc // releases the budget timer; nil for replays
	sess      *session
	key       string
	st        join2.Stream
	rl        *graph.Relabeling
	grant     *grant
	ctrs      *dht.Counters     // run-scoped; feeds the session calibration on Stop
	calib     *plan.Calibration // the kernel bucket the run's counters feed
	drained   []join2.Result
	truncated bool // results past maxCachedPrefix were not recorded
	budgetHit bool // the deadline budget cut the ranking short
	exhausted bool
	stopped   bool

	// replay, when non-nil, is a cached complete ranking served in place
	// of a live join (no engines, no admission tokens, nothing to publish).
	replay []join2.Result
	pos    int
}

// Truncated reports whether the stream's deadline budget expired: everything
// already returned is a correct ranking prefix, but the ranking was cut
// short. Meaningful once Next has returned an error or Stop has run.
func (s *Join2Stream) Truncated() bool { return s.budgetHit }

// Next returns the next-best pair in the caller's id space; ok is false at
// exhaustion (or after Stop). A cancelled ctx stops the stream and returns
// its cause: ErrBudgetExceeded marks a truncated-but-correct prefix, while a
// plain cancel is an aborted request.
func (s *Join2Stream) Next() (join2.Result, bool, error) {
	if s.stopped {
		return join2.Result{}, false, nil
	}
	if s.ctx.Err() != nil {
		err := context.Cause(s.ctx)
		s.noteBudget(err)
		s.Stop()
		return join2.Result{}, false, err
	}
	if s.replay != nil {
		if s.pos < len(s.replay) {
			r := s.replay[s.pos]
			s.pos++
			return r, true, nil
		}
		s.exhausted = true
		s.Stop()
		return join2.Result{}, false, nil
	}
	r, ok, err := s.safeNext()
	if err != nil {
		s.noteBudget(err)
		s.Stop()
		return join2.Result{}, false, err
	}
	if !ok {
		s.exhausted = true
		s.Stop()
		return join2.Result{}, false, nil
	}
	if s.rl != nil {
		r.Pair.P = s.rl.ToOld(r.Pair.P)
		r.Pair.Q = s.rl.ToOld(r.Pair.Q)
	}
	if s.sess == nil {
		// Routed (cluster-merged) streams have no session: nothing to record,
		// no cache to publish to.
		return r, true, nil
	}
	if len(s.drained) < maxCachedPrefix {
		s.drained = append(s.drained, r)
	} else {
		s.truncated = true
	}
	return r, true, nil
}

// safeNext pulls from the underlying stream, converting a panic into an
// error so a crashing joiner still flows into Stop (engines released,
// admission returned) instead of unwinding through the caller.
func (s *Join2Stream) safeNext() (r join2.Result, ok bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.svc.notePanic()
			r, ok, err = join2.Result{}, false, fmt.Errorf("service: panic in join stream: %v", p)
		}
	}()
	return s.st.Next()
}

// noteBudget records a budget-expiry truncation exactly once per stream.
func (s *Join2Stream) noteBudget(err error) {
	if errors.Is(err, ErrBudgetExceeded) && !s.budgetHit {
		s.budgetHit = true
		s.svc.budgetTruncs.Add(1)
	}
}

// NextK pulls up to k further results (fewer at exhaustion; on error the
// results drained before it are returned alongside).
func (s *Join2Stream) NextK(k int) ([]join2.Result, error) {
	return join2.Drain(k, s.Next)
}

// Stop releases the stream's engines and admission tokens and publishes the
// drained prefix to the result cache. Idempotent.
func (s *Join2Stream) Stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	if s.st != nil {
		s.st.Release()
	}
	s.svc.adm.release(s.grant)
	s.grant = nil
	if s.cancel != nil {
		s.cancel()
	}
	if s.ctrs != nil {
		// Observed-cost feedback: the run's walk counters recalibrate the
		// cost-unit estimate of the kernel bucket the stream executed under.
		s.calib.Observe(s.ctrs.Snapshot(), s.sess.g.NumEdges())
	}
	if s.sess != nil && s.replay == nil && (len(s.drained) > 0 || s.exhausted) {
		cp := make([]join2.Result, len(s.drained))
		copy(cp, s.drained)
		// A truncated recording is still a valid prefix, but it is not the
		// complete ranking even if the stream ran to exhaustion.
		s.sess.results.put(s.key, prefix{results: cp, n: len(cp), exhausted: s.exhausted && !s.truncated})
	}
}

// OpenJoin2 opens a streaming top-pairs request on the named graph: results
// arrive one at a time in rank order, bit-identical to the prefix of the
// corresponding batch Join2. ctx cancellation (e.g. a disconnected HTTP
// client) aborts the work and returns the engines to the session pool.
func (s *Service) OpenJoin2(ctx context.Context, graphName string, p, q SetRef, query Query) (*Join2Stream, error) {
	s.join2Reqs.Add(1)
	if err := s.admitGate(); err != nil {
		return nil, err
	}
	if st, claimed, err := s.routed(ctx, graphName, p, q, query); claimed {
		return st, err
	}
	rq, err := s.resolveJoin2(graphName, p, q, query)
	if err != nil {
		return nil, err
	}
	// A cached complete ranking replays without a join (a stream's demand
	// is unknown up front, so only an exhausted prefix can serve it whole).
	if pre, ok := rq.sess.results.getFull(rq.key); ok {
		s.resultHits.Add(1)
		if ctx == nil {
			ctx = context.Background()
		}
		return &Join2Stream{svc: s, ctx: ctx, sess: rq.sess, replay: pre.results.([]join2.Result)}, nil
	}
	s.resultMisses.Add(1)
	return rq.open(ctx, 0, false)
}

// BatchMeta describes how a batch response was degraded under pressure; the
// zero value means "served exactly as demanded".
type BatchMeta struct {
	// ClampedK, when non-zero, is the k the request was degraded to by load
	// shedding (the served ranking is the exact top-ClampedK).
	ClampedK int `json:"clamped_k,omitempty"`
	// Truncated reports that the deadline budget expired mid-join: the
	// served results are a correct ranking prefix, but shorter than asked.
	Truncated bool `json:"truncated,omitempty"`
}

// Join2 runs (or serves from the prefix cache) a top-k 2-way join from p to
// q with B-IDJ-Y, exactly as dhtjoin.TopKPairs would evaluate it. It drains
// the same stream OpenJoin2 exposes. When the deadline budget expires
// mid-join, the prefix drained so far is returned alongside
// ErrBudgetExceeded.
func (s *Service) Join2(ctx context.Context, graphName string, p, q SetRef, k int, query Query) ([]join2.Result, error) {
	res, meta, err := s.Join2Meta(ctx, graphName, p, q, k, query)
	if err == nil && meta.Truncated {
		err = ErrBudgetExceeded
	}
	return res, err
}

// Join2Meta is Join2 with load-degradation metadata: the HTTP layer uses it
// to report shed clamps and budget truncations as part of a 200 response
// instead of an opaque failure.
func (s *Service) Join2Meta(ctx context.Context, graphName string, p, q SetRef, k int, query Query) ([]join2.Result, BatchMeta, error) {
	var meta BatchMeta
	s.join2Reqs.Add(1)
	if err := s.admitGate(); err != nil {
		return nil, meta, err
	}
	if k <= 0 {
		return nil, meta, fmt.Errorf("service: k must be positive, got %d", k)
	}
	if st, claimed, err := s.routed(ctx, graphName, p, q, query); claimed {
		// A routed join bypasses the local result cache and shed clamping:
		// the shards apply their own admission and budgets, and the corner
		// bound already stops their streams at the demanded k.
		if err != nil {
			return nil, meta, err
		}
		defer st.Stop()
		res, err := st.NextK(k)
		return res, meta, err
	}
	rq, err := s.resolveJoin2(graphName, p, q, query)
	if err != nil {
		return nil, meta, err
	}
	if pre, ok := rq.sess.results.get(rq.key, k); ok {
		s.resultHits.Add(1)
		res := pre.results.([]join2.Result)
		n := min(k, len(res))
		out := make([]join2.Result, n)
		copy(out, res[:n])
		return out, meta, nil
	}
	// Under shed, an over-demanding miss degrades: any cached prefix beats
	// running a join, and failing that the demand is clamped to ShedK. The
	// served results are still the exact top of the ranking — shedding only
	// shortens it.
	if shedK := s.cfg.ShedK; s.Shedding() && k > shedK {
		if pre, ok := rq.sess.results.getAny(rq.key); ok && pre.n > 0 {
			s.resultHits.Add(1)
			s.shedClamps.Add(1)
			res := pre.results.([]join2.Result)
			n := min(k, pre.n)
			out := make([]join2.Result, n)
			copy(out, res[:n])
			meta.ClampedK = n
			return out, meta, nil
		}
		k = shedK
		meta.ClampedK = shedK
		s.shedClamps.Add(1)
	}
	s.resultMisses.Add(1)
	st, err := rq.open(ctx, k, true)
	if err != nil {
		if errors.Is(err, ErrBudgetExceeded) {
			// The budget expired before the join could start (e.g. spent
			// queued at admission): the correct prefix is the empty one.
			s.budgetTruncs.Add(1)
			meta.Truncated = true
			return nil, meta, nil
		}
		return nil, meta, err
	}
	defer st.Stop()
	res, err := st.NextK(k)
	if errors.Is(err, ErrBudgetExceeded) {
		// The drained prefix is correct as far as it goes; surface it with
		// the truncation marker instead of discarding paid-for work.
		meta.Truncated = true
		return res, meta, nil
	}
	if err != nil {
		return nil, meta, err
	}
	return res, meta, nil
}

// joinNReq is one resolved n-way request.
type joinNReq struct {
	svc      *Service
	sess     *session
	nodeSets []*graph.NodeSet // original id space
	edges    [][2]int
	params   dht.Params
	d        int
	agg      rankjoin.Aggregate
	m        int
	acc      plan.Accuracy
	kern     measure.Kernel
	query    Query
	key      string // empty when the request must bypass the cache
}

// resolveJoinN resolves names, sets, parameters, and the session; forced
// algorithms are validated before any cache, as in resolveJoin2.
func (s *Service) resolveJoinN(graphName string, sets []SetRef, edges [][2]int, query Query) (*joinNReq, error) {
	kern, params, d, agg, m, err := query.resolve()
	if err != nil {
		return nil, err
	}
	query.applyKernel(kern)
	s.recordMeasure(kern.Name)
	acc, err := query.accuracy()
	if err != nil {
		return nil, err
	}
	if query.Algorithm != "" {
		if err := plan.ValidateForced(plan.NWay, query.Algorithm, kern.PlanMeasure); err != nil {
			return nil, err
		}
	}
	ge, err := s.graphFor(graphName)
	if err != nil {
		return nil, err
	}
	nodeSets := make([]*graph.NodeSet, len(sets))
	for i, ref := range sets {
		ids, err := ge.resolveSet(ref)
		if err != nil {
			return nil, err
		}
		name := ref.Name
		if name == "" {
			name = fmt.Sprintf("R%d", i)
		}
		nodeSets[i] = graph.NewNodeSet(name, ids)
	}
	sess, err := s.sessionFor(ge, params, d, query.Relabel, kern.Name)
	if err != nil {
		return nil, err
	}
	// The aggregate enters the cache key by name, which identifies it only
	// for the built-in aggregates; a caller-supplied implementation could
	// share a name with a different function, so those requests bypass the
	// result cache rather than risk serving another aggregate's answers.
	// Like the 2-way key, k is excluded: the cache stores ranking prefixes.
	var key string
	if builtinAgg(agg) {
		var sb strings.Builder
		sb.WriteString("joinN|")
		for _, ref := range sets {
			refKey(&sb, ref)
			sb.WriteByte('|')
		}
		for _, e := range edges {
			fmt.Fprintf(&sb, "e%d-%d,", e[0], e[1])
		}
		fmt.Fprintf(&sb, "|agg=%s|m=%d|dist=%v", agg.Name(), m, query.Distinct)
		queryKey(&sb, params, d, &query, acc)
		key = sb.String()
	}
	return &joinNReq{svc: s, sess: sess, nodeSets: nodeSets, edges: edges,
		params: params, d: d, agg: agg, m: m, acc: acc, kern: kern, query: query, key: key}, nil
}

// open acquires admission (honoring ctx) and starts the answer stream.
func (rq *joinNReq) open(ctx context.Context) (*JoinNStream, error) {
	// Plan before admission, as in join2Req.open.
	pl, err := rq.svc.planFor(rq.sess, plan.NWay, rq.key, rq.m, rq.workload(), rq.query.Algorithm)
	if err != nil {
		return nil, err
	}
	qctx, cancel := rq.svc.budgetContext(ctx, &rq.query)
	g, err := rq.svc.adm.acquire(qctx, rq.query.Tenant, rq.query.Priority, resolveWorkers(rq.query.Workers))
	if err != nil {
		cancel()
		return nil, admitErr(qctx, err)
	}
	if err := rq.svc.cfg.Fault.Inject(fault.Checkout); err != nil {
		rq.svc.adm.release(g)
		cancel()
		return nil, err
	}
	sess := rq.sess
	querySets := rq.nodeSets
	if sess.rl != nil {
		querySets = make([]*graph.NodeSet, len(rq.nodeSets))
		for i, set := range rq.nodeSets {
			querySets[i] = sess.rl.MapSetToNew(set)
		}
	}
	qg := core.NewQueryGraph(querySets...)
	for _, e := range rq.edges {
		qg.AddEdge(e[0], e[1])
	}
	// The run-scoped counters feed the session calibration on Stop; core
	// chains its own per-run counters behind these, and these forward to
	// the service's lifetime totals.
	ctrs := &dht.Counters{Chain: &rq.svc.counters}
	spec := core.Spec{
		Graph:      sess.g,
		Query:      qg,
		Params:     rq.params,
		D:          rq.d,
		Agg:        rq.agg,
		K:          1, // required by Validate; the stream itself is k-free
		Distinct:   rq.query.Distinct,
		Measure:    rq.query.Measure,
		Workers:    g.n,
		BatchWidth: rq.query.BatchWidth,
		Pool:       sess.pool,
		Memo:       sess.memo,
		Counters:   ctrs,
		Cancel:     rq.svc.cancelPoll(qctx),
	}
	alg, err := core.NewNamed(pl.Algorithm, spec, rq.m)
	if err != nil {
		rq.svc.adm.release(g)
		cancel()
		return nil, err
	}
	st, err := alg.Stream()
	if err != nil {
		rq.svc.adm.release(g)
		cancel()
		return nil, err
	}
	rq.svc.recordPick(pl.Algorithm)
	return &JoinNStream{svc: rq.svc, ctx: qctx, cancel: cancel, sess: sess, key: rq.key, st: st, rl: sess.rl, grant: g, ctrs: ctrs}, nil
}

// workload assembles the planner's view of the n-way request.
func (rq *joinNReq) workload() plan.Workload {
	w := plan.Workload{
		Stats:      rq.sess.g.Stats(),
		K:          rq.m, // stream demand is unknown; plan for the initial batch
		M:          rq.m,
		D:          rq.d,
		Measure:    rq.kern.PlanMeasure,
		Workers:    rq.query.Workers,
		BatchWidth: rq.query.BatchWidth,
		Accuracy:   rq.acc,
	}
	w.SetSizes = make([]int, len(rq.nodeSets))
	for i, set := range rq.nodeSets {
		w.SetSizes[i] = set.Len()
	}
	w.QueryEdges = rq.edges
	return w
}

// JoinNStream streams one n-way join request; same contract as Join2Stream.
type JoinNStream struct {
	svc       *Service
	ctx       context.Context
	cancel    context.CancelFunc // releases the budget timer; nil for replays
	sess      *session
	key       string
	st        core.TupleStream
	rl        *graph.Relabeling
	grant     *grant
	ctrs      *dht.Counters // run-scoped; feeds the session calibration on Stop
	drained   []core.Answer
	truncated bool // answers past maxCachedPrefix were not recorded
	budgetHit bool // the deadline budget cut the ranking short
	exhausted bool
	stopped   bool

	// replay, when non-nil, is a cached complete ranking served in place
	// of a live join; see Join2Stream.replay.
	replay []core.Answer
	pos    int
}

// Truncated reports whether the stream's deadline budget expired; see
// Join2Stream.Truncated.
func (s *JoinNStream) Truncated() bool { return s.budgetHit }

// noteBudget records a budget-expiry truncation exactly once per stream.
func (s *JoinNStream) noteBudget(err error) {
	if errors.Is(err, ErrBudgetExceeded) && !s.budgetHit {
		s.budgetHit = true
		s.svc.budgetTruncs.Add(1)
	}
}

// safeNext pulls from the underlying stream with panic recovery; see
// Join2Stream.safeNext.
func (s *JoinNStream) safeNext() (a core.Answer, ok bool, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.svc.notePanic()
			a, ok, err = core.Answer{}, false, fmt.Errorf("service: panic in join stream: %v", p)
		}
	}()
	return s.st.Next()
}

// Next returns the next-best answer in the caller's id space; see
// Join2Stream.Next.
func (s *JoinNStream) Next() (core.Answer, bool, error) {
	if s.stopped {
		return core.Answer{}, false, nil
	}
	if s.ctx.Err() != nil {
		err := context.Cause(s.ctx)
		s.noteBudget(err)
		s.Stop()
		return core.Answer{}, false, err
	}
	if s.replay != nil {
		if s.pos < len(s.replay) {
			// Served answers are deep copies: the replay slice is the
			// cache's immutable snapshot.
			cached := s.replay[s.pos]
			s.pos++
			a := core.Answer{Nodes: make([]graph.NodeID, len(cached.Nodes)), Score: cached.Score}
			copy(a.Nodes, cached.Nodes)
			return a, true, nil
		}
		s.exhausted = true
		s.Stop()
		return core.Answer{}, false, nil
	}
	a, ok, err := s.safeNext()
	if err != nil {
		s.noteBudget(err)
		s.Stop()
		return core.Answer{}, false, err
	}
	if !ok {
		s.exhausted = true
		s.Stop()
		return core.Answer{}, false, nil
	}
	if s.rl != nil {
		for i := range a.Nodes {
			a.Nodes[i] = s.rl.ToOld(a.Nodes[i])
		}
	}
	// The caller owns the returned Nodes slice, so the drained prefix keeps
	// its own deep copy — a caller mutating a served tuple before Stop must
	// not poison what Stop publishes to the result cache.
	if len(s.drained) < maxCachedPrefix {
		kept := core.Answer{Nodes: make([]graph.NodeID, len(a.Nodes)), Score: a.Score}
		copy(kept.Nodes, a.Nodes)
		s.drained = append(s.drained, kept)
	} else {
		s.truncated = true
	}
	return a, true, nil
}

// NextK pulls up to k further answers (fewer at exhaustion; on error the
// answers drained before it are returned alongside).
func (s *JoinNStream) NextK(k int) ([]core.Answer, error) {
	return join2.Drain(k, s.Next)
}

// Stop releases engines and admission tokens and publishes the drained
// prefix (unless the request bypasses the cache). Idempotent.
func (s *JoinNStream) Stop() {
	if s.stopped {
		return
	}
	s.stopped = true
	if s.st != nil {
		s.st.Release()
	}
	s.svc.adm.release(s.grant)
	s.grant = nil
	if s.cancel != nil {
		s.cancel()
	}
	if s.ctrs != nil {
		s.sess.calib.Observe(s.ctrs.Snapshot(), s.sess.g.NumEdges())
	}
	if s.replay == nil && s.key != "" && (len(s.drained) > 0 || s.exhausted) {
		// drained holds private deep copies (see Next), so it can be
		// published as the immutable cache snapshot directly; a truncated
		// recording is a valid prefix but never a complete ranking.
		s.sess.results.put(s.key, prefix{results: s.drained, n: len(s.drained), exhausted: s.exhausted && !s.truncated})
	}
}

// OpenJoinN opens a streaming n-way join request; see OpenJoin2.
func (s *Service) OpenJoinN(ctx context.Context, graphName string, sets []SetRef, edges [][2]int, query Query) (*JoinNStream, error) {
	s.joinNReqs.Add(1)
	if err := s.admitGate(); err != nil {
		return nil, err
	}
	rq, err := s.resolveJoinN(graphName, sets, edges, query)
	if err != nil {
		return nil, err
	}
	if rq.key != "" {
		if pre, ok := rq.sess.results.getFull(rq.key); ok {
			s.resultHits.Add(1)
			if ctx == nil {
				ctx = context.Background()
			}
			return &JoinNStream{svc: s, ctx: ctx, sess: rq.sess, replay: pre.results.([]core.Answer)}, nil
		}
		s.resultMisses.Add(1)
	}
	return rq.open(ctx)
}

// JoinN runs (or serves from the prefix cache) a top-k n-way join with PJ-i
// over the query graph described by sets and edges (edges index into sets),
// exactly as dhtjoin.TopK would evaluate it. It drains the same stream
// OpenJoinN exposes. When the deadline budget expires mid-join, the prefix
// drained so far is returned alongside ErrBudgetExceeded.
func (s *Service) JoinN(ctx context.Context, graphName string, sets []SetRef, edges [][2]int, k int, query Query) ([]core.Answer, error) {
	res, meta, err := s.JoinNMeta(ctx, graphName, sets, edges, k, query)
	if err == nil && meta.Truncated {
		err = ErrBudgetExceeded
	}
	return res, err
}

// JoinNMeta is JoinN with load-degradation metadata; see Join2Meta.
func (s *Service) JoinNMeta(ctx context.Context, graphName string, sets []SetRef, edges [][2]int, k int, query Query) ([]core.Answer, BatchMeta, error) {
	var meta BatchMeta
	s.joinNReqs.Add(1)
	if err := s.admitGate(); err != nil {
		return nil, meta, err
	}
	if k <= 0 {
		return nil, meta, fmt.Errorf("service: k must be positive, got %d", k)
	}
	rq, err := s.resolveJoinN(graphName, sets, edges, query)
	if err != nil {
		return nil, meta, err
	}
	if rq.key != "" {
		if pre, ok := rq.sess.results.get(rq.key, k); ok {
			s.resultHits.Add(1)
			res := pre.results.([]core.Answer)
			return copyAnswers(res[:min(k, len(res))]), meta, nil
		}
	}
	if shedK := s.cfg.ShedK; s.Shedding() && k > shedK {
		if rq.key != "" {
			if pre, ok := rq.sess.results.getAny(rq.key); ok && pre.n > 0 {
				s.resultHits.Add(1)
				s.shedClamps.Add(1)
				res := pre.results.([]core.Answer)
				n := min(k, pre.n)
				meta.ClampedK = n
				return copyAnswers(res[:n]), meta, nil
			}
		}
		k = shedK
		meta.ClampedK = shedK
		s.shedClamps.Add(1)
	}
	if rq.key != "" {
		s.resultMisses.Add(1)
	}
	st, err := rq.open(ctx)
	if err != nil {
		if errors.Is(err, ErrBudgetExceeded) {
			s.budgetTruncs.Add(1)
			meta.Truncated = true
			return nil, meta, nil
		}
		return nil, meta, err
	}
	defer st.Stop()
	answers, err := st.NextK(k)
	if errors.Is(err, ErrBudgetExceeded) {
		meta.Truncated = true
		return answers, meta, nil
	}
	if err != nil {
		return nil, meta, err
	}
	return answers, meta, nil
}

// ExplainJoin2 resolves a 2-way request and returns the plan its execution
// would run — the chosen algorithm, every candidate's cost estimate, and the
// stats snapshot — without executing anything (a dry run: no admission
// tokens, no engines). k sizes the demand the plan is priced for; k <= 0
// plans for the resolved per-edge budget, as the streaming entry points do.
func (s *Service) ExplainJoin2(ctx context.Context, graphName string, p, q SetRef, k int, query Query) (*plan.Plan, error) {
	rq, err := s.resolveJoin2(graphName, p, q, query)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		k = rq.m
	}
	return s.planFor(rq.sess, plan.TwoWay, rq.key, k, rq.workload(k), query.Algorithm)
}

// ExplainJoinN is ExplainJoin2 for n-way requests (k is accepted for API
// symmetry; n-way plans are priced for the per-edge budget either way).
func (s *Service) ExplainJoinN(ctx context.Context, graphName string, sets []SetRef, edges [][2]int, k int, query Query) (*plan.Plan, error) {
	rq, err := s.resolveJoinN(graphName, sets, edges, query)
	if err != nil {
		return nil, err
	}
	return s.planFor(rq.sess, plan.NWay, rq.key, rq.m, rq.workload(), query.Algorithm)
}

// Score computes the truncated score h_d(u, v) exactly as dhtjoin.Score (on
// the graph as loaded; relabeling is a join-side optimization and is ignored
// here, matching the one-shot facade). ctx bounds the wait for admission.
func (s *Service) Score(ctx context.Context, graphName string, u, v graph.NodeID, query Query) (float64, error) {
	s.scoreReqs.Add(1)
	if err := s.admitGate(); err != nil {
		return 0, err
	}
	kern, params, d, _, _, err := query.resolve()
	if err != nil {
		return 0, err
	}
	query.applyKernel(kern)
	s.recordMeasure(kern.Name)
	ge, err := s.graphFor(graphName)
	if err != nil {
		return 0, err
	}
	n := ge.g.NumNodes()
	if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
		return 0, fmt.Errorf("service: node pair (%d,%d) out of range [0,%d)", u, v, n)
	}
	sess, err := s.sessionFor(ge, params, d, graph.NoRelabel, kern.Name)
	if err != nil {
		return 0, err
	}
	g, err := s.adm.acquire(ctx, query.Tenant, query.Priority, 1)
	if err != nil {
		return 0, err
	}
	defer s.adm.release(g)
	if !kern.WalkBased {
		// Matrix measures (simrank) score through the kernel's evaluator; the
		// session pool holds walk engines these measures never touch.
		ev, err := kern.NewEvaluator(sess.g, params, d)
		if err != nil {
			return 0, err
		}
		var dst [1]float64
		if err := ev.ScoresInto(u, []graph.NodeID{v}, d, dst[:]); err != nil {
			return 0, err
		}
		return dst[0], nil
	}
	e := sess.pool.Get()
	defer sess.pool.Put(e)
	return e.ForwardScoreKind(query.Measure, u, v, d), nil
}

// Stats snapshots the service counters. All int64 fields are monotone over
// the service's lifetime; Graphs and Sessions are gauges.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	graphs := len(s.graphs)
	sessions := len(s.sessions)
	memoHits, memoMisses := s.retiredMemoHits.Load(), s.retiredMemoMisses.Load()
	for _, sess := range s.sessions {
		memoHits += sess.memo.Hits()
		memoMisses += sess.memo.Misses()
	}
	s.mu.Unlock()
	s.picksMu.Lock()
	picks := make(map[string]int64, len(s.picks))
	for name, n := range s.picks {
		picks[name] = n
	}
	s.picksMu.Unlock()
	s.measureMu.Lock()
	measures := make(map[string]int64, len(s.measureQueries))
	for name, n := range s.measureQueries {
		measures[name] = n
	}
	s.measureMu.Unlock()
	snap := s.counters.Snapshot()
	free, waiting, rejected := s.adm.snapshot()
	var cluster *RouterStats
	if s.cfg.Router != nil {
		rs := s.cfg.Router.RouterStats()
		cluster = &rs
	}
	var persistence *store.Counters
	var generations map[string]uint64
	if s.store != nil {
		c := s.store.Counters()
		persistence = &c
		names := s.store.Names()
		generations = make(map[string]uint64, len(names))
		for _, name := range names {
			generations[name] = s.store.Gen(name)
		}
	}
	return Stats{
		Graphs:   graphs,
		Sessions: sessions,

		QuotaRejections:   rejected,
		BudgetTruncations: s.budgetTruncs.Load(),
		ShedClamps:        s.shedClamps.Load(),
		PanicsRecovered:   s.panics.Load(),
		AdmissionFree:     free,
		AdmissionWaiting:  waiting,
		Draining:          s.draining.Load(),

		EdgeUpdates: s.edgeUpdates.Load(),
		Persistence: persistence,
		Generations: generations,
		Cluster:     cluster,

		Join2Requests:  s.join2Reqs.Load(),
		JoinNRequests:  s.joinNReqs.Load(),
		ScoreRequests:  s.scoreReqs.Load(),
		ResultHits:     s.resultHits.Load(),
		ResultMisses:   s.resultMisses.Load(),
		MemoHits:       memoHits,
		MemoMisses:     memoMisses,
		PlanRequests:   s.planReqs.Load(),
		PlanCacheHits:  s.planCacheHits.Load(),
		PlanPicks:      picks,
		MeasureQueries: measures,
		Walks:          snap.Walks,
		EdgeSweeps:     snap.EdgeSweeps,
		FrontierEdges:  snap.FrontierEdges,
		KernelPicks:    snap.KernelPicks,
		Reverified:     snap.Reverified,
		FallbackPairs:  snap.FallbackPairs,
	}
}

// builtinAgg reports whether agg is one of the package-provided aggregates,
// whose Name() uniquely identifies it. (Interface equality is safe here:
// comparison against these comparable struct values never inspects a
// non-comparable dynamic type on the other side.)
func builtinAgg(agg rankjoin.Aggregate) bool {
	switch agg {
	case rankjoin.Sum, rankjoin.Min, rankjoin.Max, rankjoin.Avg:
		return true
	}
	return false
}

// resolveWorkers normalizes a requested worker count to [1, GOMAXPROCS·1].
func resolveWorkers(w int) int {
	if w < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		return 1
	}
	return w
}

// copyAnswers deep-copies answers (Nodes slices included) so cached tuples
// can never be mutated by a caller.
func copyAnswers(in []core.Answer) []core.Answer {
	out := make([]core.Answer, len(in))
	for i, a := range in {
		nodes := make([]graph.NodeID, len(a.Nodes))
		copy(nodes, a.Nodes)
		out[i] = core.Answer{Nodes: nodes, Score: a.Score}
	}
	return out
}
