package service

// lruOrder is the recency bookkeeping shared by the package's keyed LRUs
// (the result-prefix cache and the plan cache): a most-recently-used-last
// key list. It deliberately stays a dumb list — the caches' value semantics
// (prefix extension, generation stamps) differ, but the recency logic is
// exactly where PR 3's eviction bug class lived, so it exists once.
// Callers synchronize access with their own mutex.
type lruOrder []string

// touch moves key to the MRU position; the caller has verified presence.
func (o lruOrder) touch(key string) {
	for i, k := range o {
		if k == key {
			copy(o[i:], o[i+1:])
			o[len(o)-1] = key
			return
		}
	}
}

// evictOldest pops and returns the LRU key; the caller has verified the
// list is non-empty.
func (o *lruOrder) evictOldest() string {
	oldest := (*o)[0]
	*o = (*o)[1:]
	return oldest
}

// push appends key at the MRU position.
func (o *lruOrder) push(key string) {
	*o = append(*o, key)
}
