package service

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, recs, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh store recovered %d graphs", len(recs))
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func reopenService(t *testing.T, dir string, cfg Config) (*Service, []store.Recovered) {
	t.Helper()
	st, recs, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	cfg.Store = st
	svc := New(cfg)
	if err := svc.AdoptRecovered(recs); err != nil {
		t.Fatal(err)
	}
	return svc, recs
}

// TestServiceDurableRestart is the end-to-end durability property at the
// service layer: load, join, edit, join again, tear everything down, recover
// from disk — and the recovered service serves bit-identical results at the
// same generation without any re-PUT.
func TestServiceDurableRestart(t *testing.T) {
	dir := t.TempDir()
	g, sets := testGraph(t)
	ctx := context.Background()

	svc := New(Config{Store: openStore(t, dir)})
	if err := svc.LoadGraph("comm", g, sets); err != nil {
		t.Fatal(err)
	}
	adds := []graph.Edge{{U: 0, V: 60, W: 5}, {U: 60, V: 100, W: 2}}
	info, err := svc.UpdateEdges("comm", adds, [][2]graph.NodeID{{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 2 {
		t.Fatalf("generation after load+edit = %d, want 2", info.Generation)
	}
	want, err := svc.Join2(ctx, "comm", SetRef{Name: "C0"}, SetRef{Name: "C1"}, 10, Query{})
	if err != nil {
		t.Fatal(err)
	}
	wantScore, err := svc.Score(ctx, "comm", 0, 60, Query{})
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": a new store over the same dir, a new service adopting its
	// recovery output. Nothing is re-loaded by hand.
	svc2, recs := reopenService(t, dir, Config{})
	if len(recs) != 1 || recs[0].Name != "comm" || recs[0].Gen != 2 || recs[0].Replayed != 1 {
		t.Fatalf("recovered %+v", recs)
	}
	got, err := svc2.Join2(ctx, "comm", SetRef{Name: "C0"}, SetRef{Name: "C1"}, 10, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(want, got) {
		t.Fatal("post-restart join differs from pre-restart join")
	}
	gotScore, err := svc2.Score(ctx, "comm", 0, 60, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if gotScore != wantScore {
		t.Fatalf("post-restart score = %v, want %v", gotScore, wantScore)
	}
	infos := svc2.Graphs()
	if len(infos) != 1 || infos[0].Generation != 2 || infos[0].Evicted {
		t.Fatalf("Graphs after restart = %+v", infos)
	}
}

func TestUpdateEdgesInvalidatesAndPersists(t *testing.T) {
	dir := t.TempDir()
	g, sets := testGraph(t)
	ctx := context.Background()

	svc := New(Config{Store: openStore(t, dir)})
	if err := svc.LoadGraph("comm", g, sets); err != nil {
		t.Fatal(err)
	}
	before, err := svc.Score(ctx, "comm", 0, 1, Query{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm a join session too, so the update has cached state to invalidate.
	if _, err := svc.Join2(ctx, "comm", SetRef{Name: "C0"}, SetRef{Name: "C1"}, 5, Query{}); err != nil {
		t.Fatal(err)
	}

	// A massive direct arc must move the truncated score; serving the cached
	// pre-edit value would mean the session survived the graph swap.
	if _, err := svc.UpdateEdges("comm", []graph.Edge{{U: 0, V: 1, W: 1000}}, nil); err != nil {
		t.Fatal(err)
	}
	after, err := svc.Score(ctx, "comm", 0, 1, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Fatalf("score did not move after edge boost: before=%v after=%v", before, after)
	}
	// And the post-edit score must equal the from-scratch score on the
	// edited graph — the invalidated caches cannot leak stale columns.
	edited, err := graph.ApplyEdits(g, []graph.Edge{{U: 0, V: 1, W: 1000}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	fresh := New(Config{})
	if err := fresh.LoadGraph("comm", edited, sets); err != nil {
		t.Fatal(err)
	}
	ref, err := fresh.Score(ctx, "comm", 0, 1, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if after != ref {
		t.Fatalf("served post-edit score %v != reference %v", after, ref)
	}

	st := svc.Stats()
	if st.EdgeUpdates != 1 {
		t.Fatalf("EdgeUpdates = %d", st.EdgeUpdates)
	}
	if st.Persistence == nil || st.Persistence.WALAppends != 1 {
		t.Fatalf("Persistence = %+v", st.Persistence)
	}
	if st.Generations["comm"] != 2 {
		t.Fatalf("Generations = %v", st.Generations)
	}
}

func TestUpdateEdgesWithoutStore(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{})
	if err := svc.LoadGraph("comm", g, sets); err != nil {
		t.Fatal(err)
	}
	info, err := svc.UpdateEdges("comm", []graph.Edge{{U: 0, V: 2, W: 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Generation != 1 {
		t.Fatalf("in-memory generation = %d, want 1", info.Generation)
	}
	if _, err := svc.UpdateEdges("comm", nil, nil); err == nil {
		t.Fatal("empty edge update accepted")
	}
	if _, err := svc.UpdateEdges("missing", []graph.Edge{{U: 0, V: 1, W: 1}}, nil); err == nil {
		t.Fatal("edge update on unknown graph accepted")
	}
	if st := svc.Stats(); st.Persistence != nil || st.Generations != nil {
		t.Fatal("storeless service reported persistence stats")
	}
}

// TestEvictionReloadsLazily: with a store attached, MaxGraphs is a residency
// bound, not a capacity limit. The LRU resident is evicted from memory only,
// shows up as Evicted in the listing, and reloads transparently on use.
func TestEvictionReloadsLazily(t *testing.T) {
	dir := t.TempDir()
	g, sets := testGraph(t)
	ctx := context.Background()

	svc := New(Config{Store: openStore(t, dir), MaxGraphs: 2})
	for _, name := range []string{"a", "b", "c"} {
		if err := svc.LoadGraph(name, g, sets); err != nil {
			t.Fatalf("load %q: %v", name, err)
		}
	}
	infos := svc.Graphs()
	if len(infos) != 3 {
		t.Fatalf("Graphs lists %d entries, want 3 (evicted included)", len(infos))
	}
	evicted := 0
	for _, info := range infos {
		if info.Evicted {
			evicted++
			if info.Name != "a" {
				t.Fatalf("evicted %q, want the LRU (a)", info.Name)
			}
		}
	}
	if evicted != 1 {
		t.Fatalf("%d graphs evicted, want 1", evicted)
	}

	// Using the evicted graph reloads it from disk; results must match a
	// never-evicted service byte for byte.
	got, err := svc.Join2(ctx, "a", SetRef{Name: "C0"}, SetRef{Name: "C1"}, 8, Query{})
	if err != nil {
		t.Fatalf("join on evicted graph: %v", err)
	}
	ref := New(Config{})
	if err := ref.LoadGraph("a", g, sets); err != nil {
		t.Fatal(err)
	}
	want, err := ref.Join2(ctx, "a", SetRef{Name: "C0"}, SetRef{Name: "C1"}, 8, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(want, got) {
		t.Fatal("join over reloaded graph differs from reference")
	}
	// The reload displaced another resident; the registry never exceeds its
	// residency bound but still serves all three names.
	for _, info := range svc.Graphs() {
		if info.Name == "a" && info.Evicted {
			t.Fatal("graph a still marked evicted after use")
		}
	}
}

// TestDropGraphRemovesDurableState: a drop with a store removes disk state,
// so a restart does not resurrect the graph.
func TestDropGraphRemovesDurableState(t *testing.T) {
	dir := t.TempDir()
	g, sets := testGraph(t)

	svc := New(Config{Store: openStore(t, dir)})
	if err := svc.LoadGraph("comm", g, sets); err != nil {
		t.Fatal(err)
	}
	if ok, err := svc.DropGraph("comm"); !ok || err != nil {
		t.Fatalf("DropGraph = (%v, %v)", ok, err)
	}
	if ok, _ := svc.DropGraph("comm"); ok {
		t.Fatal("second drop found the graph")
	}
	svc2, recs := reopenService(t, dir, Config{})
	if len(recs) != 0 || len(svc2.Graphs()) != 0 {
		t.Fatalf("dropped graph resurrected: %+v", recs)
	}
}

// TestAdoptRecoveredBeyondCapacity: recovery of more graphs than MaxGraphs
// adopts what fits; the rest stay on disk and reload lazily.
func TestAdoptRecoveredBeyondCapacity(t *testing.T) {
	dir := t.TempDir()
	g, sets := testGraph(t)
	svc := New(Config{Store: openStore(t, dir)})
	for _, name := range []string{"a", "b", "c"} {
		if err := svc.LoadGraph(name, g, sets); err != nil {
			t.Fatal(err)
		}
	}

	svc2, recs := reopenService(t, dir, Config{MaxGraphs: 2})
	if len(recs) != 3 {
		t.Fatalf("recovered %d graphs", len(recs))
	}
	infos := svc2.Graphs()
	if len(infos) != 3 {
		t.Fatalf("Graphs lists %d entries", len(infos))
	}
	// All three still serve.
	ctx := context.Background()
	for _, name := range []string{"a", "b", "c"} {
		if _, err := svc2.Join2(ctx, name, SetRef{Name: "C0"}, SetRef{Name: "C1"}, 3, Query{}); err != nil {
			t.Fatalf("join on %q after adoption: %v", name, err)
		}
	}
}
