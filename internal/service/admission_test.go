package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestAdmissionTenantQueueCap: once a tenant has tenantQueue waiters queued,
// further acquires of that tenant fail fast with ErrQuotaExceeded while other
// tenants keep queueing normally.
func TestAdmissionTenantQueueCap(t *testing.T) {
	a := newAdmission(1, 1, 2)
	held, err := a.acquire(context.Background(), "t1", classInteractive, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Fill t1's queue with exactly tenantQueue waiters.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := a.acquire(ctx, "t1", classInteractive, 1)
			if err == nil {
				a.release(g)
			}
		}()
	}
	waitFor(t, func() bool { _, waiting, _ := a.snapshot(); return waiting == 2 })

	if _, err := a.acquire(context.Background(), "t1", classInteractive, 1); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-queued tenant acquire = %v, want ErrQuotaExceeded", err)
	}
	if _, _, rejected := a.snapshot(); rejected != 1 {
		t.Fatalf("rejected = %d, want 1", rejected)
	}

	// A different tenant queues (not rejected) and is granted on release.
	got := make(chan *grant, 1)
	go func() {
		g, err := a.acquire(context.Background(), "t2", classInteractive, 1)
		if err != nil {
			t.Error(err)
		}
		got <- g
	}()
	waitFor(t, func() bool { _, waiting, _ := a.snapshot(); return waiting == 3 })
	a.release(held)
	// t1's waiters are ahead in FIFO order, so drain through them: cancel the
	// t1 waiters so the token reaches t2 (each releases on grant).
	cancel()
	wg.Wait()
	select {
	case g := <-got:
		a.release(g)
	case <-time.After(5 * time.Second):
		t.Fatal("t2 never granted after release")
	}
}

// TestAdmissionTenantInflightCap: a tenant at its in-flight cap waits even
// while tokens are free, and other tenants are served around it (skipped in
// place, not blocked behind it).
func TestAdmissionTenantInflightCap(t *testing.T) {
	a := newAdmission(4, 1, 8)
	g1, err := a.acquire(context.Background(), "greedy", classInteractive, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Tokens are free (3 left) but "greedy" is at its in-flight cap of 1.
	blocked := make(chan *grant, 1)
	go func() {
		g, err := a.acquire(context.Background(), "greedy", classInteractive, 1)
		if err != nil {
			t.Error(err)
		}
		blocked <- g
	}()
	waitFor(t, func() bool { _, waiting, _ := a.snapshot(); return waiting == 1 })

	// Another tenant is admitted instantly despite the queued greedy waiter.
	g2, err := a.acquire(context.Background(), "other", classInteractive, 1)
	if err != nil {
		t.Fatalf("other tenant blocked behind a capped tenant: %v", err)
	}
	select {
	case <-blocked:
		t.Fatal("capped tenant admitted past its in-flight limit")
	default:
	}

	a.release(g1) // frees greedy's slot; its waiter is granted now
	select {
	case g := <-blocked:
		a.release(g)
	case <-time.After(5 * time.Second):
		t.Fatal("greedy waiter never granted after release")
	}
	a.release(g2)
	if free, waiting, _ := a.snapshot(); free != 4 || waiting != 0 {
		t.Fatalf("final state free=%d waiting=%d", free, waiting)
	}
}

// TestAdmissionWeightedFairness: under sustained contention from one
// interactive and one batch queue, grants follow the 3:1 class weights —
// interactive gets roughly three times the grant rate, and batch is never
// starved.
func TestAdmissionWeightedFairness(t *testing.T) {
	a := newAdmission(1, 0, 1000)
	held, err := a.acquire(context.Background(), "", classInteractive, 1)
	if err != nil {
		t.Fatal(err)
	}

	const perClass = 40
	var interDone, batchDone sync.WaitGroup
	order := make(chan int, 2*perClass) // class of each grant, in grant order
	spawn := func(class int, wg *sync.WaitGroup) {
		for i := 0; i < perClass; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				g, err := a.acquire(context.Background(), "", class, 1)
				if err != nil {
					t.Error(err)
					return
				}
				order <- class
				a.release(g)
			}()
		}
	}
	spawn(classInteractive, &interDone)
	spawn(classBatch, &batchDone)
	waitFor(t, func() bool { _, waiting, _ := a.snapshot(); return waiting == 2*perClass })

	a.release(held) // single token starts circulating through the queues
	interDone.Wait()
	batchDone.Wait()
	close(order)

	// All interactive waiters should clear while most batch waiters still
	// wait: by the time the last interactive grant lands, batch should have
	// received about perClass/3 grants — assert loosely (±, scheduling noise).
	batchBeforeInterDone := 0
	interSeen := 0
	for class := range order {
		if class == classInteractive {
			interSeen++
		} else if interSeen < perClass {
			batchBeforeInterDone++
		}
	}
	// Exact weighted-fair interleave would be perClass/3 ≈ 13; allow a wide
	// band but reject both starvation (0) and unweighted FIFO (≈ perClass).
	if batchBeforeInterDone < 3 || batchBeforeInterDone > perClass-8 {
		t.Fatalf("batch grants before interactive drained = %d (want ~%d for 3:1 weights)",
			batchBeforeInterDone, perClass/3)
	}
	if free, waiting, _ := a.snapshot(); free != 1 || waiting != 0 {
		t.Fatalf("final state free=%d waiting=%d", free, waiting)
	}
}

// TestAdmissionCancelGrantRace: hammering cancel-at-grant-time must never
// leak tokens — the cancel path that loses the race takes the buffered grant
// and releases it.
func TestAdmissionCancelGrantRace(t *testing.T) {
	a := newAdmission(2, 0, 1000)
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			go func() {
				g, err := a.acquire(ctx, "t", classInteractive, 1+i%2)
				if err == nil {
					a.release(g)
				}
				close(done)
			}()
			if i%3 == 0 {
				cancel() // race the cancel against the grant
			}
			<-done
			cancel()
		}(i)
	}
	wg.Wait()
	if free, waiting, _ := a.snapshot(); free != 2 || waiting != 0 {
		t.Fatalf("tokens leaked: free=%d waiting=%d, want 2/0", free, waiting)
	}
	if len(a.tenants) != 0 {
		t.Fatalf("%d tenant entries left after all releases", len(a.tenants))
	}
}

// waitFor polls cond (with a deadline) — admission state transitions happen
// on other goroutines.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(time.Millisecond)
	}
}
