package service

import (
	"context"

	"repro/internal/graph"
	"repro/internal/join2"
	"repro/internal/measure"
)

// This file is the service's cluster seam. The service itself knows nothing
// about rings, peers, or RPC: a Router (implemented by internal/cluster,
// which imports this package — never the reverse) may claim a 2-way join
// before local resolution and serve it as a merged stream of remote shard
// streams. Scatter requests arriving at a shard run through the same
// OpenJoin2 entry point with routing disabled via the context, so a shard
// executes locally instead of re-scattering.

// Router intercepts 2-way join requests for cluster scatter. Implementations
// must return streams whose emitted ranking is bit-identical to the local
// evaluation — same pairs, same float64 scores, same (score desc, tie asc)
// order.
type Router interface {
	// RouteJoin2 either claims the request (claimed=true, with a stream the
	// caller owns and must Release) or declines it (claimed=false), leaving
	// the service to evaluate locally. The returned stream yields results in
	// the caller's id space.
	RouteJoin2(ctx context.Context, graphName string, p, q SetRef, query Query) (st join2.Stream, claimed bool, err error)
	// RouterStats snapshots the router's monotone counters for /stats and
	// /metrics.
	RouterStats() RouterStats
}

// RouterStats is the cluster surface of Stats: scatter traffic, the corner
// bound's early stops, and placement/failover activity. All fields are
// monotone counters.
type RouterStats struct {
	// Coordinator side.
	ScatterQueries  int64 `json:"scatter_queries"`   // join2 requests served via scatter
	ShardStreams    int64 `json:"shard_streams"`     // shard streams opened (failover reopens included)
	ShardEarlyStops int64 `json:"shard_early_stops"` // shard streams halted by the corner bound before drain
	Failovers       int64 `json:"failovers"`         // dead replicas skipped mid-query

	// Shard side.
	ScatterServed int64 `json:"scatter_served"` // scatter requests executed for peers

	// Placement.
	PlacementsOut int64 `json:"placements_out"` // segments shipped to peers
	PlacementsIn  int64 `json:"placements_in"`  // segments accepted from peers
}

// SetRouter wires a cluster router after construction (the router needs the
// service to execute shard-local work, so neither can be built first with
// the other already in hand). Call it before serving begins; it is not
// synchronized against in-flight requests.
func (s *Service) SetRouter(r Router) { s.cfg.Router = r }

// noRouteKey marks a context whose joins must evaluate locally.
type noRouteKey struct{}

// WithoutRouting returns a context under which OpenJoin2/Join2Meta bypass
// the configured Router. Shard-side scatter execution uses it: the request
// was already routed once, and a shard re-scattering it would recurse.
func WithoutRouting(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, noRouteKey{}, true)
}

// routed reports whether the configured Router claims this request.
func (s *Service) routed(ctx context.Context, graphName string, p, q SetRef, query Query) (*Join2Stream, bool, error) {
	r := s.cfg.Router
	if r == nil {
		return nil, false, nil
	}
	if ctx == nil {
		ctx = context.Background()
	} else if ctx.Value(noRouteKey{}) != nil {
		return nil, false, nil
	}
	// Scatter stays walk-only: matrix measures (simrank) score through a
	// global fixed point no per-shard subgraph can reproduce, so those
	// queries always evaluate locally. An unknown name falls through to
	// local resolution, which rejects it with ErrUnknownMeasure.
	if query.MeasureName != "" {
		if kern, err := measure.Lookup(query.MeasureName); err != nil || !kern.WalkBased {
			return nil, false, nil
		}
	}
	st, claimed, err := r.RouteJoin2(ctx, graphName, p, q, query)
	if err != nil {
		return nil, true, err
	}
	if !claimed {
		return nil, false, nil
	}
	// The wrapper has no session, no grant, and no engines of its own — the
	// shards hold those — so Stop only releases the merged stream.
	return &Join2Stream{svc: s, ctx: ctx, st: st}, true, nil
}

// ResolveSet resolves a set reference against the named graph, returning
// node ids in the graph's (original) id space. The cluster coordinator uses
// it to materialize the query-side P set before range-partitioning it across
// shards.
func (s *Service) ResolveSet(graphName string, ref SetRef) ([]graph.NodeID, error) {
	ge, err := s.graphFor(graphName)
	if err != nil {
		return nil, err
	}
	return ge.resolveSet(ref)
}

// GraphData returns the named graph with its declared node sets and durable
// generation — the payload cluster placement encodes into a ship segment.
func (s *Service) GraphData(name string) (*graph.Graph, []*graph.NodeSet, uint64, error) {
	ge, err := s.graphFor(name)
	if err != nil {
		return nil, nil, 0, err
	}
	sets := make([]*graph.NodeSet, 0, len(ge.sets))
	for _, set := range ge.sets {
		sets = append(sets, set)
	}
	return ge.g, sets, ge.gen, nil
}

// Validate resolves the query's parameters without running anything; the
// shard side rejects a malformed scatter before opening a stream.
func (q *Query) Validate() error {
	if _, _, _, _, _, err := q.resolve(); err != nil {
		return err
	}
	_, err := q.accuracy()
	return err
}
