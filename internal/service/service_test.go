package service

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/join2"
	"repro/internal/rankjoin"
)

// testGraph builds a labeled community graph with three declared sets.
func testGraph(t testing.TB) (*graph.Graph, []*graph.NodeSet) {
	t.Helper()
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{50, 50, 40}, PIn: 0.12, POut: 0.05, Seed: 7, MaxWeight: 3, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g, sets
}

// refJoin2 evaluates the one-shot reference for a 2-way join, bypassing the
// service entirely.
func refJoin2(t testing.TB, g *graph.Graph, p, q []graph.NodeID, k int) []join2.Result {
	t.Helper()
	params := dht.DHTLambda(0.2)
	cfg := join2.Config{Graph: g, Params: params, D: params.StepsForEpsilon(1e-6), P: p, Q: q}
	j, err := join2.NewBIDJY(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := j.TopK(k)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// refJoinN evaluates the one-shot n-way reference (chain query).
func refJoinN(t testing.TB, g *graph.Graph, sets []*graph.NodeSet, k int) []core.Answer {
	t.Helper()
	params := dht.DHTLambda(0.2)
	qg := core.Chain(sets...)
	spec := core.Spec{
		Graph: g, Query: qg, Params: params, D: params.StepsForEpsilon(1e-6),
		Agg: rankjoin.Min, K: k,
	}
	alg, err := core.NewPJI(spec, 50)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := alg.Run()
	if err != nil {
		t.Fatal(err)
	}
	return answers
}

func sameResults(a, b []join2.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameAnswers(a, b []core.Answer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Score != b[i].Score || len(a[i].Nodes) != len(b[i].Nodes) {
			return false
		}
		for j := range a[i].Nodes {
			if a[i].Nodes[j] != b[i].Nodes[j] {
				return false
			}
		}
	}
	return true
}

func TestServiceRegistry(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{MaxGraphs: 2})
	if err := svc.LoadGraph("a", g, sets); err != nil {
		t.Fatal(err)
	}
	if err := svc.LoadGraph("b", g, sets); err != nil {
		t.Fatal(err)
	}
	if err := svc.LoadGraph("c", g, sets); err == nil {
		t.Fatal("registry over capacity accepted a third graph")
	}
	// Replacing a loaded name is allowed at capacity.
	if err := svc.LoadGraph("b", g, sets); err != nil {
		t.Fatalf("replace failed: %v", err)
	}
	infos := svc.Graphs()
	if len(infos) != 2 || infos[0].Name != "a" || infos[1].Name != "b" {
		t.Fatalf("Graphs() = %+v", infos)
	}
	if infos[0].Nodes != g.NumNodes() || len(infos[0].Sets) != len(sets) {
		t.Fatalf("GraphInfo = %+v", infos[0])
	}
	if ok, err := svc.DropGraph("a"); !ok || err != nil {
		t.Fatalf("DropGraph(a) = %v, %v", ok, err)
	}
	if ok, err := svc.DropGraph("a"); ok || err != nil {
		t.Fatalf("second DropGraph(a) = %v, %v", ok, err)
	}
	if _, err := svc.Join2(context.Background(), "a", SetRef{Name: sets[0].Name}, SetRef{Name: sets[1].Name}, 5, Query{}); err == nil {
		t.Fatal("join on dropped graph succeeded")
	}
}

func TestServiceLoadGraphText(t *testing.T) {
	g, sets := testGraph(t)
	var buf bytes.Buffer
	if err := graph.WriteText(&buf, g, sets...); err != nil {
		t.Fatal(err)
	}
	svc := New(Config{})
	info, err := svc.LoadGraphText("g", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "g" || info.Nodes != g.NumNodes() || len(info.Sets) != len(sets) {
		t.Fatalf("LoadGraphText info = %+v", info)
	}
	got, err := svc.Join2(context.Background(), "g", SetRef{Name: sets[0].Name}, SetRef{Name: sets[1].Name}, 10, Query{})
	if err != nil {
		t.Fatal(err)
	}
	want := refJoin2(t, g, sets[0].Nodes(), sets[1].Nodes(), 10)
	if !sameResults(got, want) {
		t.Fatalf("text-loaded join differs:\n got %+v\nwant %+v", got, want)
	}
}

// TestServiceJoin2BitIdentical: served results — cold, cached, relabeled,
// explicit-id sets, admitted workers — must be bit-identical to the one-shot
// join.
func TestServiceJoin2BitIdentical(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	want := refJoin2(t, g, sets[0].Nodes(), sets[1].Nodes(), 15)
	for round := 0; round < 3; round++ { // round 0 cold, 1-2 served from LRU
		got, err := svc.Join2(context.Background(), "g", SetRef{Name: sets[0].Name}, SetRef{Name: sets[1].Name}, 15, Query{})
		if err != nil {
			t.Fatal(err)
		}
		if !sameResults(got, want) {
			t.Fatalf("round %d differs from one-shot:\n got %+v\nwant %+v", round, got, want)
		}
	}
	st := svc.Stats()
	if st.ResultHits != 2 || st.ResultMisses != 1 {
		t.Fatalf("result cache hits/misses = %d/%d, want 2/1", st.ResultHits, st.ResultMisses)
	}
	// Explicit id lists and worker counts must not change anything.
	got, err := svc.Join2(context.Background(), "g",
		SetRef{IDs: sets[0].Nodes()}, SetRef{IDs: sets[1].Nodes()}, 15, Query{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !sameResults(got, want) {
		t.Fatal("explicit-id / worker join differs from one-shot")
	}
	// Relabeled joins return original-space ids with equal scores (to fp
	// summation reordering; ranks of non-tied pairs are unchanged).
	rel, err := svc.Join2(context.Background(), "g", SetRef{Name: sets[0].Name}, SetRef{Name: sets[1].Name}, 15,
		Query{Relabel: graph.ByDegree})
	if err != nil {
		t.Fatal(err)
	}
	if len(rel) != len(want) {
		t.Fatalf("relabeled join: %d results, want %d", len(rel), len(want))
	}
	for i := range rel {
		if diff := rel[i].Score - want[i].Score; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("relabeled rank %d: score %v, want %v", i, rel[i].Score, want[i].Score)
		}
		if !sets[0].Contains(rel[i].Pair.P) || !sets[1].Contains(rel[i].Pair.Q) {
			t.Fatalf("relabeled rank %d: pair %v not in original id space", i, rel[i].Pair)
		}
	}
}

// TestServiceJoinNBitIdentical: n-way serving must match the one-shot PJ-i.
func TestServiceJoinNBitIdentical(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	want := refJoinN(t, g, sets, 8)
	refs := []SetRef{{Name: sets[0].Name}, {Name: sets[1].Name}, {Name: sets[2].Name}}
	edges := [][2]int{{0, 1}, {1, 2}}
	for round := 0; round < 2; round++ {
		got, err := svc.JoinN(context.Background(), "g", refs, edges, 8, Query{})
		if err != nil {
			t.Fatal(err)
		}
		if !sameAnswers(got, want) {
			t.Fatalf("round %d: n-way differs:\n got %+v\nwant %+v", round, got, want)
		}
	}
	// Mutating a served answer must not corrupt the cache.
	got, err := svc.JoinN(context.Background(), "g", refs, edges, 8, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > 0 {
		got[0].Nodes[0] = -999
	}
	again, err := svc.JoinN(context.Background(), "g", refs, edges, 8, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameAnswers(again, want) {
		t.Fatal("cached answers were mutated through a served copy")
	}
}

// TestServiceScore matches the one-shot dhtjoin.Score semantics.
func TestServiceScore(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	params := dht.DHTLambda(0.2)
	d := params.StepsForEpsilon(1e-6)
	e, err := dht.NewEngine(g, params, d)
	if err != nil {
		t.Fatal(err)
	}
	u, v := sets[0].Nodes()[0], sets[1].Nodes()[0]
	want := e.ForwardScoreKind(dht.FirstHit, u, v, d)
	got, err := svc.Score(context.Background(), "g", u, v, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("Score = %v, want %v", got, want)
	}
	if _, err := svc.Score(context.Background(), "g", -1, v, Query{}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

// TestServiceConcurrent drives one service from many goroutines (run under
// -race in CI): mixed join2/joinN/score traffic over shared sessions, memo,
// relabel cache, and result LRU, with every response checked against the
// serial reference.
func TestServiceConcurrent(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{MaxConcurrency: 4})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	want2 := refJoin2(t, g, sets[0].Nodes(), sets[1].Nodes(), 12)
	wantN := refJoinN(t, g, sets, 6)
	refs := []SetRef{{Name: sets[0].Name}, {Name: sets[1].Name}, {Name: sets[2].Name}}
	edges := [][2]int{{0, 1}, {1, 2}}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				switch (w + i) % 3 {
				case 0:
					got, err := svc.Join2(context.Background(), "g", SetRef{Name: sets[0].Name}, SetRef{Name: sets[1].Name}, 12,
						Query{Workers: 2, Relabel: graph.RelabelMode((w + i) % 2)})
					if err != nil {
						errs <- err
						return
					}
					if (w+i)%2 == 0 && !sameResults(got, want2) {
						errs <- fmt.Errorf("worker %d iter %d: join2 mismatch", w, i)
						return
					}
				case 1:
					got, err := svc.JoinN(context.Background(), "g", refs, edges, 6, Query{Workers: 2})
					if err != nil {
						errs <- err
						return
					}
					if !sameAnswers(got, wantN) {
						errs <- fmt.Errorf("worker %d iter %d: joinN mismatch", w, i)
						return
					}
				default:
					if _, err := svc.Score(context.Background(), "g", sets[0].Nodes()[w], sets[1].Nodes()[i], Query{}); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := svc.Stats()
	if st.Join2Requests == 0 || st.JoinNRequests == 0 || st.ScoreRequests == 0 {
		t.Fatalf("request counters did not move: %+v", st)
	}
	if st.Walks == 0 {
		t.Fatalf("walk counters did not move: %+v", st)
	}
}

// TestServiceSessionEviction: overflowing MaxSessions retires the oldest
// session; its memo counters survive in Stats (monotone).
func TestServiceSessionEviction(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{MaxSessions: 2})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	p, q := SetRef{Name: sets[0].Name}, SetRef{Name: sets[1].Name}
	for _, d := range []int{3, 4, 5} { // distinct d → distinct sessions
		if _, err := svc.Join2(context.Background(), "g", p, q, 5, Query{D: d}); err != nil {
			t.Fatal(err)
		}
	}
	if got := svc.Stats().Sessions; got != 2 {
		t.Fatalf("Sessions = %d, want 2", got)
	}
	// The evicted d=3 session rebuilds on demand and still serves correctly.
	want := refJoin2(t, g, sets[0].Nodes(), sets[1].Nodes(), 5)
	_ = want
	res, err := svc.Join2(context.Background(), "g", p, q, 5, Query{D: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("rebuilt session returned %d results", len(res))
	}
}

// sameNameAgg is a custom aggregate whose Name collides with another
// implementation's — the case the result cache must not conflate.
type sameNameAgg struct{ scale float64 }

func (a sameNameAgg) Name() string { return "CUSTOM" }
func (a sameNameAgg) Combine(scores []float64) float64 {
	s := 0.0
	for _, v := range scores {
		s += v
	}
	return s * a.scale
}

// TestServiceCustomAggregateNotConflated: two distinct aggregates sharing a
// Name() must never serve each other's cached answers — custom aggregates
// bypass the result cache, whose key identifies built-ins by name only.
func TestServiceCustomAggregateNotConflated(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	refs := []SetRef{{Name: sets[0].Name}, {Name: sets[1].Name}}
	edges := [][2]int{{0, 1}}
	a, err := svc.JoinN(context.Background(), "g", refs, edges, 4, Query{Agg: sameNameAgg{scale: 1}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.JoinN(context.Background(), "g", refs, edges, 4, Query{Agg: sameNameAgg{scale: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("empty answers")
	}
	if a[0].Score == b[0].Score {
		t.Fatalf("scaled aggregate served the unscaled aggregate's results (%v)", a[0].Score)
	}
}

// TestServiceDropDuringSessionBuild: a session built for a graph that was
// dropped mid-build must still serve its request but must not be retained
// (it would pin the dropped graph's memory unreachably).
func TestServiceDropDuringSessionBuild(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	ge, err := svc.graphFor("g")
	if err != nil {
		t.Fatal(err)
	}
	svc.DropGraph("g")
	// Simulate the in-flight request that resolved ge before the drop.
	params := dht.DHTLambda(0.2)
	if _, err := svc.sessionFor(ge, params, 4, graph.NoRelabel, "dht"); err != nil {
		t.Fatal(err)
	}
	if got := svc.Stats().Sessions; got != 0 {
		t.Fatalf("session for dropped graph was retained (Sessions = %d)", got)
	}
}

// TestServiceNegativeLimits: sizing knobs below 1 that have no meaningful
// disabled state must fall back to defaults instead of wedging (a negative
// MaxSessions used to panic session eviction on an empty order slice).
func TestServiceNegativeLimits(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{MaxGraphs: -1, MaxSessions: -1, MaxConcurrency: -1})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	res, err := svc.Join2(context.Background(), "g", SetRef{Name: sets[0].Name}, SetRef{Name: sets[1].Name}, 5, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("%d results, want 5", len(res))
	}
}

// TestRefKeyNoCollisions: the result-cache key must keep adversarial set
// names apart — a name containing the key delimiters must not alias a
// different (p, q) split.
func TestRefKeyNoCollisions(t *testing.T) {
	key := func(p, q SetRef) string {
		var sb strings.Builder
		refKey(&sb, p)
		sb.WriteByte('|')
		refKey(&sb, q)
		return sb.String()
	}
	a := key(SetRef{Name: "a|n1:b"}, SetRef{Name: "c"})
	b := key(SetRef{Name: "a"}, SetRef{Name: "b|n1:c"})
	if a == b {
		t.Fatalf("delimiter-bearing names collided: %q", a)
	}
	c := key(SetRef{IDs: []graph.NodeID{1, 23}}, SetRef{IDs: []graph.NodeID{4}})
	d := key(SetRef{IDs: []graph.NodeID{1}}, SetRef{IDs: []graph.NodeID{23, 4}})
	if c == d {
		t.Fatalf("id lists collided across the p/q split: %q", c)
	}
}

// TestAdmission pins the grant semantics: partial grants, minimum one token,
// release wakes waiters, and a cancelled context abandons the wait.
func TestAdmission(t *testing.T) {
	ctx := context.Background()
	a := newAdmission(4, 0, 0)
	g1, err := a.acquire(ctx, "", classInteractive, 3)
	if err != nil || g1.n != 3 {
		t.Fatalf("acquire(3) = %+v, %v", g1, err)
	}
	g2, err := a.acquire(ctx, "", classInteractive, 5)
	if err != nil || g2.n != 1 {
		t.Fatalf("acquire(5) with 1 free = %+v, %v", g2, err)
	}
	done := make(chan int)
	go func() {
		g, err := a.acquire(ctx, "", classInteractive, 2)
		if err != nil {
			t.Error(err)
		}
		done <- g.n
	}()
	a.release(g1)
	if got := <-done; got < 1 || got > 2 {
		t.Fatalf("blocked acquire granted %d", got)
	}
}

// TestAdmissionHonorsContext: a waiter whose request context dies must stop
// occupying the queue and report the context error.
func TestAdmissionHonorsContext(t *testing.T) {
	a := newAdmission(1, 0, 0)
	held, err := a.acquire(context.Background(), "", classInteractive, 1)
	if err != nil {
		t.Fatal(err)
	}
	// All tokens held: a cancelled waiter must abort rather than block.
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error)
	go func() {
		_, err := a.acquire(ctx, "", classInteractive, 1)
		errc <- err
	}()
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled acquire returned %v", err)
	}
	// Pre-cancelled contexts never touch the tokens.
	if g, err := a.acquire(ctx, "", classInteractive, 3); err == nil || g != nil {
		t.Fatalf("pre-cancelled acquire = %+v, %v", g, err)
	}
	a.release(held)
	if g, err := a.acquire(context.Background(), "", classInteractive, 1); err != nil || g.n != 1 {
		t.Fatalf("post-release acquire = %+v, %v", g, err)
	}
}

// TestServiceStatsMonotone: every int64 counter in Stats must be
// non-decreasing across request activity, session eviction included.
func TestServiceStatsMonotone(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{MaxSessions: 1})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	p, q := SetRef{Name: sets[0].Name}, SetRef{Name: sets[1].Name}
	prev := svc.Stats()
	check := func(cur Stats) {
		t.Helper()
		type pair struct {
			name     string
			old, new int64
		}
		for _, c := range []pair{
			{"join2", prev.Join2Requests, cur.Join2Requests},
			{"joinN", prev.JoinNRequests, cur.JoinNRequests},
			{"score", prev.ScoreRequests, cur.ScoreRequests},
			{"rhits", prev.ResultHits, cur.ResultHits},
			{"rmiss", prev.ResultMisses, cur.ResultMisses},
			{"mhits", prev.MemoHits, cur.MemoHits},
			{"mmiss", prev.MemoMisses, cur.MemoMisses},
			{"walks", prev.Walks, cur.Walks},
			{"sweeps", prev.EdgeSweeps, cur.EdgeSweeps},
			{"frontier", prev.FrontierEdges, cur.FrontierEdges},
		} {
			if c.new < c.old {
				t.Fatalf("counter %s decreased: %d -> %d", c.name, c.old, c.new)
			}
		}
		prev = cur
	}
	for i, d := range []int{3, 4, 3, 5, 4} { // session churn under MaxSessions=1
		if _, err := svc.Join2(context.Background(), "g", p, q, 4, Query{D: d}); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if _, err := svc.Score(context.Background(), "g", 0, 1, Query{D: d}); err != nil {
				t.Fatal(err)
			}
		}
		check(svc.Stats())
	}
}

// BenchmarkServiceRepeatedJoin2 vs BenchmarkOneShotRepeatedJoin2: the
// acceptance benchmark — a repeated-query workload through the service's
// shared pools/caches against per-request construction.
func BenchmarkServiceRepeatedJoin2(b *testing.B) {
	g, sets := testGraph(b)
	svc := New(Config{})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		b.Fatal(err)
	}
	p, q := SetRef{Name: sets[0].Name}, SetRef{Name: sets[1].Name}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Join2(context.Background(), "g", p, q, 20, Query{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOneShotRepeatedJoin2(b *testing.B) {
	g, sets := testGraph(b)
	params := dht.DHTLambda(0.2)
	d := params.StepsForEpsilon(1e-6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := join2.Config{Graph: g, Params: params, D: d, P: sets[0].Nodes(), Q: sets[1].Nodes()}
		j, err := join2.NewBIDJY(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := j.TopK(20); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceColdResultJoin2 measures the shared-pool/memo path with
// the result LRU defeated (distinct k per iteration pattern), isolating the
// engine-reuse win from the result-cache win.
func BenchmarkServiceColdResultJoin2(b *testing.B) {
	g, sets := testGraph(b)
	svc := New(Config{ResultCacheSize: -1})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		b.Fatal(err)
	}
	p, q := SetRef{Name: sets[0].Name}, SetRef{Name: sets[1].Name}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.Join2(context.Background(), "g", p, q, 20, Query{}); err != nil {
			b.Fatal(err)
		}
	}
}
