package service

import (
	"context"
	"sync"
)

// Priority classes for admission. Interactive is the zero value, so untagged
// requests get the low-latency class.
const (
	classInteractive = 0
	classBatch       = 1
	numClasses       = 2
)

// classWeights drives the weighted-fair scheduler: for every classWeights[c]
// grants a class receives, the other classes advance proportionally less
// virtual time, so interactive traffic gets ~3× the grant rate of batch when
// both queues are non-empty — but batch is never starved.
var classWeights = [numClasses]int64{classInteractive: 3, classBatch: 1}

// admission is the per-request worker admission controller: a counting grant
// of worker tokens with a fixed total, split across tenants and two priority
// classes. Every running request holds at least one token, so at most `total`
// join workers are in flight across all concurrent requests — concurrent
// joins shrink their worker counts instead of oversubscribing GOMAXPROCS
// (worker count never changes a result, so admission is invisible in the
// responses).
//
// Per tenant, two caps apply: at most tenantInflight requests of a tenant may
// hold tokens at once (further requests wait even when tokens are free — one
// tenant cannot monopolize the pool), and at most tenantQueue requests may
// wait (beyond that, acquire fails fast with ErrQuotaExceeded so doomed work
// is shed at the door instead of after queueing).
//
// Grants are partial but never zero: a request asking for many workers takes
// min(want, free) ≥ 1, which keeps the "each request holds ≥ 1 token while
// running, and never waits while holding tokens" invariant deadlock-free.
// Waiters are FIFO within a class; across classes the scheduler picks by
// weighted virtual time (classWeights). A waiter whose tenant is at its
// in-flight cap is skipped, not dequeued — it keeps its queue position until
// the tenant releases.
type admission struct {
	mu    sync.Mutex
	free  int
	total int

	tenantInflight int // max concurrently admitted requests per tenant
	tenantQueue    int // max queued waiters per tenant

	tenants map[string]*tenantState
	queues  [numClasses][]*waiter
	vtime   [numClasses]int64 // grants × (Π weights / weight[c]), for fair pick
	waiting int               // queued waiters, all classes (gauge)

	rejected int64 // ErrQuotaExceeded count (stats)
}

// tenantState tracks one tenant's admitted and queued request counts; entries
// are dropped as soon as both reach zero, so the map stays bounded by live
// tenants.
type tenantState struct {
	inflight int
	queued   int
}

// waiter is one blocked acquire. grant sends are buffered so the scheduler
// (holding the lock) never blocks on a waiter that is concurrently
// cancelling.
type waiter struct {
	tenant string
	class  int
	want   int
	ch     chan int // receives the granted token count, exactly once
}

// grant is the handle a successful acquire returns; release returns its
// tokens and wakes eligible waiters.
type grant struct {
	n      int
	tenant string
}

func newAdmission(total, tenantInflight, tenantQueue int) *admission {
	if total < 1 {
		total = 1
	}
	if tenantInflight < 1 || tenantInflight > total {
		tenantInflight = total
	}
	if tenantQueue < 1 {
		tenantQueue = defaultTenantQueue
	}
	return &admission{
		free:           total,
		total:          total,
		tenantInflight: tenantInflight,
		tenantQueue:    tenantQueue,
		tenants:        make(map[string]*tenantState),
	}
}

func (a *admission) tenant(name string) *tenantState {
	t := a.tenants[name]
	if t == nil {
		t = &tenantState{}
		a.tenants[name] = t
	}
	return t
}

func (a *admission) dropIfIdle(name string, t *tenantState) {
	if t.inflight == 0 && t.queued == 0 {
		delete(a.tenants, name)
	}
}

// acquire blocks until the request is granted tokens or ctx is done. It
// returns ErrQuotaExceeded immediately when the tenant's waiting queue is
// full. class is clamped to the known classes; a nil ctx never cancels.
func (a *admission) acquire(ctx context.Context, tenant string, class, want int) (*grant, error) {
	if want < 1 {
		want = 1
	}
	if class < 0 || class >= numClasses {
		class = classInteractive
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	a.mu.Lock()
	t := a.tenant(tenant)
	// Fast path: tokens free, tenant under its cap, and nobody is queued
	// ahead (granting here would jump the line the scheduler maintains).
	if a.free > 0 && a.waiting == 0 && t.inflight < a.tenantInflight {
		n := min(want, a.free)
		a.free -= n
		t.inflight++
		a.vtime[class] += vtStep(class)
		a.mu.Unlock()
		return &grant{n: n, tenant: tenant}, nil
	}
	if t.queued >= a.tenantQueue {
		a.rejected++
		a.dropIfIdle(tenant, t)
		a.mu.Unlock()
		return nil, ErrQuotaExceeded
	}
	w := &waiter{tenant: tenant, class: class, want: want, ch: make(chan int, 1)}
	t.queued++
	a.waiting++
	a.queues[class] = append(a.queues[class], w)
	// The new waiter may be immediately eligible (e.g. tokens free but this
	// tenant was at its cap a moment ago, or tokens were just released while
	// the queue was empty in this class).
	a.schedule()
	a.mu.Unlock()

	select {
	case n := <-w.ch:
		return &grant{n: n, tenant: tenant}, nil
	case <-ctx.Done():
		a.mu.Lock()
		if a.unqueue(w) {
			t := a.tenants[w.tenant]
			t.queued--
			a.waiting--
			a.dropIfIdle(w.tenant, t)
			a.mu.Unlock()
			return nil, ctx.Err()
		}
		a.mu.Unlock()
		// A grant raced the cancel: the scheduler already dequeued us and
		// buffered the token count. Take it and give it straight back.
		n := <-w.ch
		a.release(&grant{n: n, tenant: w.tenant})
		return nil, ctx.Err()
	}
}

// release returns a grant's tokens and lets the scheduler hand them out.
// Safe to call exactly once per grant; nil is a no-op.
func (a *admission) release(g *grant) {
	if g == nil || g.n == 0 {
		return
	}
	a.mu.Lock()
	a.free += g.n
	if t := a.tenants[g.tenant]; t != nil {
		t.inflight--
		a.dropIfIdle(g.tenant, t)
	}
	g.n = 0
	a.schedule()
	a.mu.Unlock()
}

// vtStep is the virtual-time increment for one grant of class c: classes with
// larger weights advance slower, so they win the min-vtime pick more often.
func vtStep(c int) int64 {
	prod := int64(1)
	for _, w := range classWeights {
		prod *= w
	}
	return prod / classWeights[c]
}

// schedule hands free tokens to eligible waiters. Called with a.mu held.
// Within a class waiters are FIFO, but a waiter whose tenant is at its
// in-flight cap is skipped in place; across classes the smallest weighted
// virtual time wins (ties to the lower class index, i.e. interactive).
func (a *admission) schedule() {
	for a.free > 0 {
		best := -1
		var bestIdx int
		for c := 0; c < numClasses; c++ {
			idx := a.eligible(c)
			if idx < 0 {
				continue
			}
			if best < 0 || a.vtime[c] < a.vtime[best] {
				best, bestIdx = c, idx
			}
		}
		if best < 0 {
			return
		}
		q := a.queues[best]
		w := q[bestIdx]
		a.queues[best] = append(q[:bestIdx], q[bestIdx+1:]...)
		t := a.tenants[w.tenant]
		t.queued--
		t.inflight++
		a.waiting--
		n := min(w.want, a.free)
		a.free -= n
		a.vtime[best] += vtStep(best)
		w.ch <- n // buffered; never blocks
	}
}

// eligible returns the index of the first waiter in class c whose tenant is
// under its in-flight cap, or -1. Called with a.mu held.
func (a *admission) eligible(c int) int {
	for i, w := range a.queues[c] {
		if a.tenants[w.tenant].inflight < a.tenantInflight {
			return i
		}
	}
	return -1
}

// unqueue removes w from its class queue; false means the scheduler already
// granted it. Called with a.mu held.
func (a *admission) unqueue(w *waiter) bool {
	q := a.queues[w.class]
	for i, x := range q {
		if x == w {
			a.queues[w.class] = append(q[:i], q[i+1:]...)
			return true
		}
	}
	return false
}

// snapshot returns the gauges the stats endpoint and the load shedder read.
func (a *admission) snapshot() (free, waiting int, rejected int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.free, a.waiting, a.rejected
}
