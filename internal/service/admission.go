package service

import "context"

// admission is the per-request worker admission controller: a counting
// grant of worker tokens with a fixed total. Every running request holds at
// least one token, so at most `total` join workers are in flight across all
// concurrent requests — concurrent joins shrink their worker counts instead
// of oversubscribing GOMAXPROCS (worker count never changes a result, so
// admission is invisible in the responses).
//
// acquire grants min(want, free) but never blocks a request forever behind
// large ones: when no token is free it waits until one is released — or
// until the request's context is cancelled, which is how a disconnected
// client stops occupying the admission queue before its join even started.
// Partial grants are deliberate — granting what's available and shrinking
// the request's worker count keeps throughput monotone and makes the
// "each request holds ≥ 1 token" invariant deadlock-free (no request ever
// waits while holding tokens).
type admission struct {
	tokens chan struct{}
}

func newAdmission(total int) *admission {
	if total < 1 {
		total = 1
	}
	a := &admission{tokens: make(chan struct{}, total)}
	for i := 0; i < total; i++ {
		a.tokens <- struct{}{}
	}
	return a
}

// acquire blocks until at least one token is free or ctx is done, then
// grants up to want tokens (at least one) without further blocking. A nil
// ctx never cancels.
func (a *admission) acquire(ctx context.Context, want int) (int, error) {
	if want < 1 {
		want = 1
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	select {
	case <-a.tokens:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	granted := 1
	for granted < want {
		select {
		case <-a.tokens:
			granted++
		default:
			return granted, nil
		}
	}
	return granted, nil
}

// release returns n tokens, waking one waiter per token.
func (a *admission) release(n int) {
	for i := 0; i < n; i++ {
		a.tokens <- struct{}{}
	}
}
