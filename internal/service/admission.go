package service

import "sync"

// admission is the per-request worker admission controller: a counting
// grant of worker tokens with a fixed total. Every request holds at least
// one token while it runs, so at most `total` join workers are in flight
// across all concurrent requests — concurrent joins shrink their worker
// counts instead of oversubscribing GOMAXPROCS (worker count never changes
// a result, so admission is invisible in the responses).
//
// acquire grants min(want, free) but never blocks a request forever behind
// large ones: when no token is free it waits until one is released. Partial
// grants are deliberate — granting what's available and shrinking the
// request's worker count keeps throughput monotone and makes the
// "each request holds ≥ 1 token" invariant deadlock-free (no request ever
// waits while holding tokens).
type admission struct {
	mu   sync.Mutex
	cond *sync.Cond
	free int
}

func newAdmission(total int) *admission {
	if total < 1 {
		total = 1
	}
	a := &admission{free: total}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// acquire blocks until at least one token is free, then grants up to want
// tokens (at least one). want must be >= 1.
func (a *admission) acquire(want int) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	for a.free == 0 {
		a.cond.Wait()
	}
	granted := want
	if granted > a.free {
		granted = a.free
	}
	a.free -= granted
	return granted
}

// release returns n tokens and wakes waiters.
func (a *admission) release(n int) {
	a.mu.Lock()
	a.free += n
	a.mu.Unlock()
	a.cond.Broadcast()
}
