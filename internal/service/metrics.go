package service

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Prometheus text exposition of Stats, hand-rendered: the format is three
// trivial line shapes (# HELP, # TYPE, sample), which is not worth a client
// dependency. Counter names carry the _total suffix per convention; gauges
// do not. Metric values are exact — counters are integers, and the one
// boolean gauge renders as 0/1.

// metricsContentType is the exposition format version this renders.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// metric emits one un-labelled sample with its header lines.
func metric(w io.Writer, name, kind, help string, value int64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %d\n", name, help, name, kind, name, value)
}

// WriteMetrics renders a stats snapshot in the Prometheus text format. The
// same counters /stats serves as JSON, under stable njoind_* names.
func WriteMetrics(w io.Writer, st Stats) {
	metric(w, "njoind_graphs", "gauge", "Loaded graphs in the registry.", int64(st.Graphs))
	metric(w, "njoind_sessions", "gauge", "Live shared-resource sessions.", int64(st.Sessions))

	metric(w, "njoind_join2_requests_total", "counter", "2-way join requests.", st.Join2Requests)
	metric(w, "njoind_joinn_requests_total", "counter", "n-way join requests.", st.JoinNRequests)
	metric(w, "njoind_score_requests_total", "counter", "Single-pair score requests.", st.ScoreRequests)
	metric(w, "njoind_result_hits_total", "counter", "Result-cache hits.", st.ResultHits)
	metric(w, "njoind_result_misses_total", "counter", "Result-cache misses.", st.ResultMisses)
	metric(w, "njoind_memo_hits_total", "counter", "Score-column memo hits.", st.MemoHits)
	metric(w, "njoind_memo_misses_total", "counter", "Score-column memo misses.", st.MemoMisses)

	metric(w, "njoind_plan_requests_total", "counter", "Planner decisions requested.", st.PlanRequests)
	metric(w, "njoind_plan_cache_hits_total", "counter", "Planner cache hits.", st.PlanCacheHits)
	if len(st.PlanPicks) > 0 {
		const name = "njoind_plan_picks_total"
		fmt.Fprintf(w, "# HELP %s Executions per picked algorithm.\n# TYPE %s counter\n", name, name)
		algos := make([]string, 0, len(st.PlanPicks))
		for algo := range st.PlanPicks {
			algos = append(algos, algo)
		}
		sort.Strings(algos)
		for _, algo := range algos {
			fmt.Fprintf(w, "%s{algo=%s} %d\n", name, strconv.Quote(algo), st.PlanPicks[algo])
		}
	}

	if len(st.MeasureQueries) > 0 {
		const name = "njoind_measure_queries_total"
		fmt.Fprintf(w, "# HELP %s Queries per resolved proximity measure.\n# TYPE %s counter\n", name, name)
		names := make([]string, 0, len(st.MeasureQueries))
		for m := range st.MeasureQueries {
			names = append(names, m)
		}
		sort.Strings(names)
		for _, m := range names {
			fmt.Fprintf(w, "%s{measure=%s} %d\n", name, strconv.Quote(m), st.MeasureQueries[m])
		}
	}

	metric(w, "njoind_walks_total", "counter", "Random walks executed.", st.Walks)
	metric(w, "njoind_edge_sweeps_total", "counter", "Walk-kernel edge sweeps.", st.EdgeSweeps)
	metric(w, "njoind_frontier_edges_total", "counter", "Edges crossed by walk frontiers.", st.FrontierEdges)
	metric(w, "njoind_kernel_picks_total", "counter", "Runs executed on the certified fast kernel.", st.KernelPicks)
	metric(w, "njoind_reverified_total", "counter", "Pairs re-verified through the exact kernel.", st.Reverified)
	metric(w, "njoind_fallback_pairs_total", "counter", "Band pairs rescored beyond the demanded k.", st.FallbackPairs)

	metric(w, "njoind_quota_rejections_total", "counter", "Requests rejected by tenant quotas.", st.QuotaRejections)
	metric(w, "njoind_budget_truncations_total", "counter", "Rankings truncated by deadline budgets.", st.BudgetTruncations)
	metric(w, "njoind_shed_clamps_total", "counter", "Batch demands clamped by load shedding.", st.ShedClamps)
	metric(w, "njoind_panics_recovered_total", "counter", "Panics recovered inside request handling.", st.PanicsRecovered)
	metric(w, "njoind_admission_free", "gauge", "Free admission tokens.", int64(st.AdmissionFree))
	metric(w, "njoind_admission_waiting", "gauge", "Requests waiting for admission.", int64(st.AdmissionWaiting))
	draining := int64(0)
	if st.Draining {
		draining = 1
	}
	metric(w, "njoind_draining", "gauge", "1 while the server drains for shutdown.", draining)

	metric(w, "njoind_edge_updates_total", "counter", "Edge-update batches applied.", st.EdgeUpdates)
	if p := st.Persistence; p != nil {
		metric(w, "njoind_wal_appends_total", "counter", "WAL records appended.", p.WALAppends)
		metric(w, "njoind_snapshots_total", "counter", "Snapshot segments written.", p.Snapshots)
	}

	if c := st.Cluster; c != nil {
		metric(w, "njoind_cluster_scatter_queries_total", "counter", "Join2 queries served via cluster scatter.", c.ScatterQueries)
		metric(w, "njoind_cluster_shard_streams_total", "counter", "Shard streams opened (failover reopens included).", c.ShardStreams)
		metric(w, "njoind_cluster_shard_early_stops_total", "counter", "Shard streams halted by the corner bound before drain.", c.ShardEarlyStops)
		metric(w, "njoind_cluster_failovers_total", "counter", "Dead replicas skipped mid-query.", c.Failovers)
		metric(w, "njoind_cluster_scatter_served_total", "counter", "Scatter requests executed for peers.", c.ScatterServed)
		metric(w, "njoind_cluster_placements_out_total", "counter", "Graph segments shipped to peers.", c.PlacementsOut)
		metric(w, "njoind_cluster_placements_in_total", "counter", "Graph segments accepted from peers.", c.PlacementsIn)
	}
}
