package service

// HTTP suites for the measure registry: discovery (GET /measures), serving
// ppr and simrank through both join endpoints, the unknown-measure error
// envelope, canonical cache keys across the "dht"/"" spellings, and the
// per-measure counters in /stats and /metrics.

import (
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"testing"

	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/join2"
	"repro/internal/simrank"
)

func TestHTTPMeasuresEndpoint(t *testing.T) {
	srv, _, _ := startServer(t)
	var out struct {
		Measures []struct {
			Name     string `json:"name"`
			Contract string `json:"contract"`
			Family   string `json:"family"`
			Walk     string `json:"walk"`
			Doc      string `json:"doc"`
		} `json:"measures"`
	}
	if code := getJSON(t, srv.URL+"/measures", &out); code != http.StatusOK {
		t.Fatalf("GET /measures = %d", code)
	}
	byName := map[string]string{}
	for _, m := range out.Measures {
		if m.Doc == "" || m.Contract == "" {
			t.Fatalf("measure %q served without doc/contract: %+v", m.Name, m)
		}
		byName[m.Name] = m.Family
	}
	for name, family := range map[string]string{"dht": "walk", "reach": "walk", "ppr": "walk", "simrank": "matrix"} {
		if byName[name] != family {
			t.Fatalf("measure %q family %q, want %q (served: %v)", name, byName[name], family, byName)
		}
	}
}

func TestHTTPUnknownMeasure(t *testing.T) {
	srv, _, sets := startServer(t)
	var out struct {
		Error struct {
			Status  int    `json:"status"`
			Message string `json:"message"`
		} `json:"error"`
	}
	body := map[string]any{
		"graph":   "test",
		"p":       map[string]any{"set": sets[0].Name},
		"q":       map[string]any{"set": sets[1].Name},
		"k":       3,
		"options": map[string]any{"measure": "katz"},
	}
	if code := postJSON(t, srv.URL+"/join2", body, &out); code != http.StatusBadRequest {
		t.Fatalf("POST /join2 with unknown measure: status %d, want 400", code)
	}
	if !strings.Contains(out.Error.Message, "katz") || !strings.Contains(out.Error.Message, "simrank") {
		t.Fatalf("/join2 error %q does not name the bad measure and the registered ones", out.Error.Message)
	}
	out.Error.Message = ""
	if code := getJSON(t, srv.URL+"/score?graph=test&u=0&v=1&measure=katz", &out); code != http.StatusBadRequest {
		t.Fatalf("GET /score with unknown measure: status %d, want 400", code)
	}
	if !strings.Contains(out.Error.Message, "katz") {
		t.Fatalf("/score error %q does not name the bad measure", out.Error.Message)
	}
}

// TestHTTPJoinSimRank serves simrank through both join endpoints — batch and
// streaming — and pins the results against the dense matrix.
func TestHTTPJoinSimRank(t *testing.T) {
	srv, g, sets := startServer(t)
	m, err := simrank.SharedMatrix(g)
	if err != nil {
		t.Fatal(err)
	}
	const k = 12
	want, err := m.TopKPairs(sets[0].Nodes(), sets[1].Nodes(), k)
	if err != nil {
		t.Fatal(err)
	}

	req := map[string]any{
		"graph":   "test",
		"p":       map[string]any{"set": sets[0].Name},
		"q":       map[string]any{"set": sets[1].Name},
		"k":       k,
		"options": map[string]any{"measure": "simrank"},
	}
	var out struct {
		Results []pairJSON `json:"results"`
	}
	if code := postJSON(t, srv.URL+"/join2", req, &out); code != http.StatusOK {
		t.Fatalf("POST /join2 measure=simrank = %d", code)
	}
	if len(out.Results) != k {
		t.Fatalf("join2: %d results, want %d", len(out.Results), k)
	}
	for i, r := range out.Results {
		if r.P != want[i].Pair.P || r.Q != want[i].Pair.Q || r.Score != want[i].Score {
			t.Fatalf("join2 rank %d: %+v, matrix says %+v", i, r, want[i])
		}
	}

	// Streaming returns the identical prefix through the same path.
	req["stream"] = true
	lines, _ := ndjsonLines(t, srv.URL+"/join2", req)
	if len(lines) != k+1 {
		t.Fatalf("streamed %d lines, want %d + terminator", len(lines), k)
	}
	for i, wr := range want {
		line := lines[i]
		if graph.NodeID(line["p"].(float64)) != wr.Pair.P ||
			graph.NodeID(line["q"].(float64)) != wr.Pair.Q ||
			line["score"].(float64) != wr.Score {
			t.Fatalf("stream line %d = %v, want %+v", i, line, wr)
		}
	}

	// n-way under MIN over a chain: the served score sequence must equal
	// the brute-forced tuple scores from the matrix.
	var scores []float64
	for _, a := range sets[0].Nodes() {
		for _, b := range sets[1].Nodes() {
			sAB := m.Score(a, b)
			for _, c := range sets[2].Nodes() {
				scores = append(scores, math.Min(sAB, m.Score(b, c)))
			}
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	const kn = 8
	reqN := map[string]any{
		"graph":   "test",
		"sets":    []map[string]any{{"set": sets[0].Name}, {"set": sets[1].Name}, {"set": sets[2].Name}},
		"shape":   "chain",
		"k":       kn,
		"options": map[string]any{"measure": "simrank"},
	}
	var outN struct {
		Answers []answerJSON `json:"answers"`
	}
	if code := postJSON(t, srv.URL+"/joinN", reqN, &outN); code != http.StatusOK {
		t.Fatalf("POST /joinN measure=simrank = %d", code)
	}
	if len(outN.Answers) != kn {
		t.Fatalf("joinN: %d answers, want %d", len(outN.Answers), kn)
	}
	for i, a := range outN.Answers {
		if a.Score != scores[i] {
			t.Fatalf("joinN rank %d score %v, brute force says %v", i, a.Score, scores[i])
		}
	}
}

// TestHTTPJoinPPR serves ppr with its default parameterization and pins the
// ranking against the backward reach fold under dht.PPR(0.5).
func TestHTTPJoinPPR(t *testing.T) {
	srv, g, sets := startServer(t)
	params := dht.PPR(0.5)
	cfg := join2.Config{
		Graph: g, Params: params, D: params.StepsForEpsilon(1e-6),
		P: sets[0].Nodes(), Q: sets[1].Nodes(), Measure: dht.Reach,
	}
	j, err := join2.NewBIDJY(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const k = 10
	want, err := j.TopK(k)
	if err != nil {
		t.Fatal(err)
	}

	req := map[string]any{
		"graph":   "test",
		"p":       map[string]any{"set": sets[0].Name},
		"q":       map[string]any{"set": sets[1].Name},
		"k":       k,
		"options": map[string]any{"measure": "ppr"},
	}
	var out struct {
		Results []pairJSON `json:"results"`
	}
	if code := postJSON(t, srv.URL+"/join2", req, &out); code != http.StatusOK {
		t.Fatalf("POST /join2 measure=ppr = %d", code)
	}
	if len(out.Results) != k {
		t.Fatalf("join2: %d results, want %d", len(out.Results), k)
	}
	for i, r := range out.Results {
		if r.P != want[i].Pair.P || r.Q != want[i].Pair.Q || r.Score != want[i].Score {
			t.Fatalf("join2 rank %d: %+v, reference says %+v", i, r, want[i])
		}
	}
}

// TestHTTPMeasureCanonicalization: "measure":"dht" and no measure at all
// resolve to the same canonical query, so they share one result-cache entry
// and return identical bytes.
func TestHTTPMeasureCanonicalization(t *testing.T) {
	srv, g, sets := startServer(t)
	want := refJoin2(t, g, sets[0].Nodes(), sets[1].Nodes(), 5)

	run := func(measure string) []pairJSON {
		req := map[string]any{
			"graph": "test",
			"p":     map[string]any{"set": sets[0].Name},
			"q":     map[string]any{"set": sets[1].Name},
			"k":     5,
		}
		if measure != "" {
			req["options"] = map[string]any{"measure": measure}
		}
		var out struct {
			Results []pairJSON `json:"results"`
		}
		if code := postJSON(t, srv.URL+"/join2", req, &out); code != http.StatusOK {
			t.Fatalf("POST /join2 (measure %q) = %d", measure, code)
		}
		return out.Results
	}

	first := run("")
	var st Stats
	getJSON(t, srv.URL+"/stats", &st)
	second := run("dht")
	var st2 Stats
	getJSON(t, srv.URL+"/stats", &st2)

	if st2.ResultHits <= st.ResultHits {
		t.Fatalf("explicit dht spelling missed the result cache (%d -> %d hits)", st.ResultHits, st2.ResultHits)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("rank %d: %+v vs %+v", i, first[i], second[i])
		}
		if first[i].P != want[i].Pair.P || first[i].Score != want[i].Score {
			t.Fatalf("rank %d: %+v, reference says %+v", i, first[i], want[i])
		}
	}
}

// TestHTTPMeasureCounters: per-measure counters reach /stats and /metrics.
func TestHTTPMeasureCounters(t *testing.T) {
	srv, _, sets := startServer(t)
	for _, measure := range []string{"", "simrank", "ppr"} {
		req := map[string]any{
			"graph": "test",
			"p":     map[string]any{"set": sets[0].Name},
			"q":     map[string]any{"set": sets[1].Name},
			"k":     3,
		}
		if measure != "" {
			req["options"] = map[string]any{"measure": measure}
		}
		var out struct{}
		if code := postJSON(t, srv.URL+"/join2", req, &out); code != http.StatusOK {
			t.Fatalf("POST /join2 (measure %q) = %d", measure, code)
		}
	}

	var st Stats
	if code := getJSON(t, srv.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("GET /stats = %d", code)
	}
	for _, name := range []string{"dht", "simrank", "ppr"} {
		if st.MeasureQueries[name] == 0 {
			t.Fatalf("measure_queries missing %q: %v", name, st.MeasureQueries)
		}
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, sample := range []string{
		`njoind_measure_queries_total{measure="dht"}`,
		`njoind_measure_queries_total{measure="simrank"}`,
		`njoind_measure_queries_total{measure="ppr"}`,
	} {
		if !strings.Contains(text, sample) {
			t.Fatalf("/metrics missing %s:\n%s", sample, text)
		}
	}
}
