package service

import "sync"

// resultLRU is a mutex-protected LRU of recent top-k results keyed by the
// request signature. Values are stored as immutable snapshots (the service
// deep-copies on put and on get where aliasing could leak), so concurrent
// hits are race-free.
type resultLRU struct {
	mu      sync.Mutex
	cap     int
	entries map[string]any
	order   []string // most recently used last
}

// newResultLRU returns a cache of the given capacity; capacity < 0 disables
// caching (every get misses, every put is dropped).
func newResultLRU(capacity int) *resultLRU {
	if capacity < 0 {
		return nil
	}
	return &resultLRU{cap: capacity, entries: make(map[string]any, capacity)}
}

func (c *resultLRU) get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	for i, k := range c.order {
		if k == key {
			copy(c.order[i:], c.order[i+1:])
			c.order[len(c.order)-1] = key
			break
		}
	}
	return v, true
}

func (c *resultLRU) put(key string, v any) {
	if c == nil || c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		c.entries[key] = v
		for i, k := range c.order {
			if k == key {
				copy(c.order[i:], c.order[i+1:])
				c.order[len(c.order)-1] = key
				break
			}
		}
		return
	}
	if len(c.order) >= c.cap {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = v
	c.order = append(c.order, key)
}

// len reports the number of cached results.
func (c *resultLRU) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
