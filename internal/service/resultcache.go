package service

import "sync"

// prefix is one cached ranking prefix: the longest contiguous run of
// top-ranked results a request (batch or streamed) has drained for one
// query signature. Because a streamed prefix of length m is bit-identical
// to the one-shot top-m (the streaming API's core invariant), any request
// for k ≤ len results — whatever its k — is served from the prefix; longer
// requests re-run and replace it with their longer prefix. exhausted marks
// a prefix that is the complete ranking, so even k > len is served.
//
// Values are stored as immutable snapshots (the service deep-copies on put
// and on get where aliasing could leak), so concurrent hits are race-free.
type prefix struct {
	results   any // []join2.Result or []core.Answer, original id space
	n         int // number of results in the prefix
	exhausted bool
}

// resultLRU is a mutex-protected LRU of ranking prefixes keyed by the
// request signature (which deliberately excludes k).
type resultLRU struct {
	mu      sync.Mutex
	cap     int
	entries map[string]prefix
	order   lruOrder
}

// newResultLRU returns a cache of the given capacity; capacity < 0 disables
// caching (every get misses, every put is dropped).
func newResultLRU(capacity int) *resultLRU {
	if capacity < 0 {
		return nil
	}
	return &resultLRU{cap: capacity, entries: make(map[string]prefix, capacity)}
}

// get returns the cached prefix when it can serve k results: it holds at
// least k, or it is the exhausted complete ranking.
func (c *resultLRU) get(key string, k int) (prefix, bool) {
	if c == nil {
		return prefix{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[key]
	if !ok || (v.n < k && !v.exhausted) {
		return prefix{}, false
	}
	c.order.touch(key)
	return v, true
}

// getAny returns whatever prefix is cached for key, however short — the load
// shedder serves a stale-length-but-exact prefix in place of running a join
// it has no capacity for.
func (c *resultLRU) getAny(key string) (prefix, bool) {
	if c == nil {
		return prefix{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[key]
	if !ok {
		return prefix{}, false
	}
	c.order.touch(key)
	return v, true
}

// getFull returns the cached prefix only when it is the complete ranking
// (exhausted), which is the one case a stream of unknown demand can be
// served entirely from cache.
func (c *resultLRU) getFull(key string) (prefix, bool) {
	if c == nil {
		return prefix{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[key]
	if !ok || !v.exhausted {
		return prefix{}, false
	}
	c.order.touch(key)
	return v, true
}

// put offers a drained prefix. It only ever extends knowledge: a stored
// prefix is replaced when the offer is longer, or marks the ranking
// exhausted where the stored one did not.
func (c *resultLRU) put(key string, v prefix) {
	if c == nil || c.cap == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[key]; ok {
		if v.n > old.n || (v.exhausted && !old.exhausted) {
			c.entries[key] = v
		}
		c.order.touch(key)
		return
	}
	if len(c.order) >= c.cap {
		delete(c.entries, c.order.evictOldest())
	}
	c.entries[key] = v
	c.order.push(key)
}
