package service

import (
	"sync"

	"repro/internal/plan"
)

// planCacheCap bounds each session's plan cache. Plans are tiny (a handful
// of estimate rows), so the cap exists to bound key-string retention, not
// memory pressure; it is sized like a working set of distinct (query, k)
// shapes a client realistically cycles through.
const planCacheCap = 64

// planCache memoizes planner decisions per session, keyed like the result
// LRU (the request signature, plus the demand k the plan was sized for).
// Entries are stamped with the session calibration's generation: a lookup
// whose generation has moved on misses, so recalibrated sessions re-plan
// with the fresh cost unit while the steady state serves cached decisions.
// Safe for concurrent use.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]planEntry
	order   lruOrder
}

type planEntry struct {
	pl  *plan.Plan
	gen uint64
}

func newPlanCache(capacity int) *planCache {
	return &planCache{cap: capacity, entries: make(map[string]planEntry, capacity)}
}

// get returns the cached plan for key if it was computed under the same
// calibration generation.
func (c *planCache) get(key string, gen uint64) (*plan.Plan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || e.gen != gen {
		return nil, false
	}
	c.order.touch(key)
	return e.pl, true
}

// put publishes a plan under key at the given generation, evicting the
// least recently used entry when full.
func (c *planCache) put(key string, gen uint64, pl *plan.Plan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		c.entries[key] = planEntry{pl: pl, gen: gen}
		c.order.touch(key)
		return
	}
	if len(c.order) >= c.cap {
		delete(c.entries, c.order.evictOldest())
	}
	c.entries[key] = planEntry{pl: pl, gen: gen}
	c.order.push(key)
}
