package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/dht"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/measure"
	"repro/internal/rankjoin"
)

// maxGraphBody bounds an uploaded graph file (text format) at 256 MiB — far
// above the evaluation datasets, low enough that a stray upload cannot OOM
// the server.
const maxGraphBody = 256 << 20

// OptionsJSON is the wire form of a Query. All fields are optional; zero
// values select the paper's defaults, exactly as dhtjoin.Options does.
type OptionsJSON struct {
	Lambda     float64 `json:"lambda,omitempty"`  // DHTλ decay (default 0.2)
	DHTE       bool    `json:"dhte,omitempty"`    // use the DHTe parameterization
	PPR        bool    `json:"ppr,omitempty"`     // Personalized PageRank params (damping = lambda); implies measure "reach" unless measure is set explicitly
	Epsilon    float64 `json:"epsilon,omitempty"` // truncation accuracy target (default 1e-6)
	D          int     `json:"d,omitempty"`       // forced truncation depth (overrides epsilon)
	Agg        string  `json:"agg,omitempty"`     // SUM | MIN | MAX | AVG (n-way; default MIN)
	M          int     `json:"m,omitempty"`       // per-edge budget (n-way; default 50)
	Distinct   bool    `json:"distinct,omitempty"`
	Measure    string  `json:"measure,omitempty"` // registered measure name: "dht" (default) | "reach" | "ppr" | "simrank" (GET /measures lists them)
	Workers    int     `json:"workers,omitempty"`
	BatchWidth int     `json:"batch_width,omitempty"`
	Relabel    string  `json:"relabel,omitempty"`   // off | degree | bfs
	Algo       string  `json:"algo,omitempty"`      // force an executor (B-IDJ-Y, B-BJ, PJ-i, AP, …); empty = cost-based planner
	Accuracy   string  `json:"accuracy,omitempty"`  // planner kernel contract: "exact" (default) | "fast" (certified fast kernel; same ranking)
	Tenant     string  `json:"tenant,omitempty"`    // admission-quota bucket (X-Tenant header is the fallback)
	Priority   string  `json:"priority,omitempty"`  // "interactive" (default) | "batch" (X-Priority header is the fallback)
	BudgetMS   int     `json:"budget_ms,omitempty"` // wall-clock deadline budget in milliseconds; 0 = server default
}

// toQuery resolves the wire options into a Query.
func (o *OptionsJSON) toQuery() (Query, error) {
	var q Query
	if o == nil {
		return q, nil
	}
	switch {
	case o.DHTE && o.PPR:
		return q, fmt.Errorf("options: dhte and ppr are mutually exclusive")
	case o.DHTE:
		q.Params = dht.DHTE()
	case o.PPR:
		c := o.Lambda
		if c == 0 {
			c = 0.2
		}
		q.Params = dht.PPR(c)
		q.Measure = dht.Reach
	case o.Lambda != 0:
		q.Params = dht.DHTLambda(o.Lambda)
	}
	// The measure resolves through the registry (service.Query.resolve calls
	// measure.Lookup), so every registered kernel — walk-based or not — is
	// one wire spelling away. An empty name keeps the legacy semantics: the
	// PPR flag above may have implied the reach kind, and "dht" stays the
	// default. Unknown names fail at resolve time with ErrUnknownMeasure
	// (mapped to HTTP 400), listing the registered spellings.
	q.MeasureName = o.Measure
	if o.Agg != "" {
		agg, err := rankjoin.ByName(o.Agg)
		if err != nil {
			return q, err
		}
		q.Agg = agg
	}
	mode, err := graph.ParseRelabelMode(o.Relabel)
	if err != nil {
		return q, err
	}
	q.Relabel = mode
	q.Epsilon = o.Epsilon
	q.D = o.D
	q.M = o.M
	q.Distinct = o.Distinct
	q.Workers = o.Workers
	q.BatchWidth = o.BatchWidth
	q.Algorithm = o.Algo
	q.Accuracy = o.Accuracy
	q.Tenant = o.Tenant
	switch o.Priority {
	case "", "interactive":
		q.Priority = PriorityInteractive
	case "batch":
		q.Priority = PriorityBatch
	default:
		return q, fmt.Errorf("options: unknown priority %q (want interactive or batch)", o.Priority)
	}
	if o.BudgetMS < 0 {
		return q, fmt.Errorf("options: budget_ms must be >= 0, got %d", o.BudgetMS)
	}
	q.Budget = time.Duration(o.BudgetMS) * time.Millisecond
	return q, nil
}

// applyIdentity fills the query's tenant and priority from the request
// headers when the options body left them unset — X-Tenant names the quota
// bucket, X-Priority: batch selects the batch admission class. Body options
// win over headers so a proxy can set coarse defaults that clients refine.
func applyIdentity(r *http.Request, q *Query) error {
	if q.Tenant == "" {
		q.Tenant = r.Header.Get("X-Tenant")
	}
	if q.Priority == PriorityInteractive {
		switch strings.ToLower(r.Header.Get("X-Priority")) {
		case "", "interactive":
		case "batch":
			q.Priority = PriorityBatch
		default:
			return fmt.Errorf("options: unknown X-Priority %q (want interactive or batch)", r.Header.Get("X-Priority"))
		}
	}
	return nil
}

// SetRefJSON is the wire form of a SetRef.
type SetRefJSON struct {
	Set string         `json:"set,omitempty"` // named set declared by the graph
	IDs []graph.NodeID `json:"ids,omitempty"` // explicit node list
}

func (r SetRefJSON) toRef() SetRef { return SetRef{Name: r.Set, IDs: r.IDs} }

// join2Request is the POST /join2 body. Stream selects an NDJSON streaming
// response (one result object per line, flushed as produced; k = 0 then
// means "stream until exhausted"). Cursor skips the first Cursor results of
// the ranking — the "next page" continuation: a response's next_cursor is
// the Cursor of the request that continues it. Cursor works with and
// without Stream.
type join2Request struct {
	Graph   string       `json:"graph"`
	P       SetRefJSON   `json:"p"`
	Q       SetRefJSON   `json:"q"`
	K       int          `json:"k"`
	Stream  bool         `json:"stream,omitempty"`
	Cursor  int          `json:"cursor,omitempty"`
	Explain bool         `json:"explain,omitempty"` // dry run: return the plan, execute nothing
	Options *OptionsJSON `json:"options,omitempty"`
}

// edgeUpdateRequest is the POST /graphs/{name}/edges body: one atomic batch
// of weighted-arc insertions and deletions. An add of an existing arc sums
// into its weight (the graph builder's duplicate convention); a del removes
// the directed arc entirely and is a no-op if absent. Deletions apply after
// additions. The whole batch is durable (or rejected) as a unit.
type edgeUpdateRequest struct {
	Add []edgeAddJSON `json:"add,omitempty"`
	Del []edgeDelJSON `json:"del,omitempty"`
}

type edgeAddJSON struct {
	U graph.NodeID `json:"u"`
	V graph.NodeID `json:"v"`
	W float64      `json:"w"`
}

type edgeDelJSON struct {
	U graph.NodeID `json:"u"`
	V graph.NodeID `json:"v"`
}

// pairJSON is one served 2-way result.
type pairJSON struct {
	P     graph.NodeID `json:"p"`
	Q     graph.NodeID `json:"q"`
	Score float64      `json:"score"`
}

// joinNRequest is the POST /joinN body. The query graph is given either as a
// shape over the sets (chain | triangle | star | clique) or as explicit
// edges indexing into sets.
type joinNRequest struct {
	Graph   string       `json:"graph"`
	Sets    []SetRefJSON `json:"sets"`
	Shape   string       `json:"shape,omitempty"`
	Edges   [][2]int     `json:"edges,omitempty"`
	K       int          `json:"k"`
	Stream  bool         `json:"stream,omitempty"`
	Cursor  int          `json:"cursor,omitempty"`
	Explain bool         `json:"explain,omitempty"` // dry run: return the plan, execute nothing
	Options *OptionsJSON `json:"options,omitempty"`
}

// answerJSON is one served n-way answer.
type answerJSON struct {
	Nodes []graph.NodeID `json:"nodes"`
	Score float64        `json:"score"`
}

// shapeEdges expands a named query shape over n sets into explicit edges,
// mirroring core.Chain/Triangle/Star/Clique.
func shapeEdges(shape string, n int) ([][2]int, error) {
	switch shape {
	case "chain":
		if n < 2 {
			return nil, fmt.Errorf("chain needs >= 2 sets, got %d", n)
		}
		edges := make([][2]int, 0, n-1)
		for i := 0; i+1 < n; i++ {
			edges = append(edges, [2]int{i, i + 1})
		}
		return edges, nil
	case "triangle":
		if n != 3 {
			return nil, fmt.Errorf("triangle needs exactly 3 sets, got %d", n)
		}
		return [][2]int{{0, 1}, {1, 2}, {2, 0}}, nil
	case "star":
		if n < 2 {
			return nil, fmt.Errorf("star needs >= 2 sets, got %d", n)
		}
		edges := make([][2]int, 0, n-1)
		for i := 1; i < n; i++ {
			edges = append(edges, [2]int{0, i})
		}
		return edges, nil
	case "clique":
		if n < 2 {
			return nil, fmt.Errorf("clique needs >= 2 sets, got %d", n)
		}
		var edges [][2]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				edges = append(edges, [2]int{i, j})
			}
		}
		return edges, nil
	}
	return nil, fmt.Errorf("unknown shape %q (want chain, triangle, star, or clique)", shape)
}

// NewHandler returns the njoind HTTP API over svc:
//
//	PUT    /graphs/{name}   load a text-format graph (body = graph file)
//	GET    /graphs          list loaded graphs
//	DELETE /graphs/{name}   drop a graph (and its durable state, if any)
//	POST   /graphs/{name}/edges  apply an atomic edge-update batch ({"add":[{"u":..,"v":..,"w":..}],"del":[{"u":..,"v":..}]})
//	POST   /join2           top-k 2-way join (planner-picked; force with options.algo)
//	POST   /joinN           top-k n-way join (planner-picked; force with options.algo)
//	GET    /measures        registered proximity measures (name, contract, family)
//	GET    /score           single pair score (?graph=&u=&v=[&lambda=&d=&measure=...])
//	GET    /explain         dry-run plan over named sets (?graph=&p=&q= or ?graph=&sets=&shape=)
//	GET    /stats           service counters (incl. planner picks)
//
// The join endpoints are streaming-capable: "stream": true switches the
// response to NDJSON (one rank-ordered result per line, flushed as
// produced, terminated by a {"done":true,...} line), and "cursor": n skips
// the first n results — the "next page" continuation, usable with or
// without streaming. "explain": true turns either join request into a dry
// run: the response is {"plan": ...} — the cost-based planner's decision,
// per-candidate estimates, and stats snapshot — and nothing executes.
// Handlers run under the request context, so a disconnected client aborts
// the join and returns its engines to the session pool.
//
// Responses are JSON; errors are {"error": {"status": ..., "message": ...}}
// with a 4xx/5xx status (streaming responses report mid-flight failures as
// an in-band {"error": ...} line instead).
func NewHandler(svc *Service) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("PUT /graphs/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		body := http.MaxBytesReader(w, r.Body, maxGraphBody)
		// The info comes straight from the load itself — not from a registry
		// re-read — so a concurrent DELETE of the same name can no longer
		// turn a successful PUT into a 500 "graph vanished after load".
		info, err := svc.LoadGraphText(name, body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		// Prometheus text exposition of the same counters /stats serves as
		// JSON (cluster scatter counters included, when a router is wired).
		w.Header().Set("Content-Type", metricsContentType)
		WriteMetrics(w, svc.Stats())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness: the process is up and serving, draining or not.
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// Readiness: load balancers pull a draining instance out of rotation
		// while its in-flight streams finish.
		if svc.Draining() {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "draining": true})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"ready": true})
	})

	mux.HandleFunc("GET /graphs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"graphs": svc.Graphs()})
	})

	mux.HandleFunc("GET /measures", func(w http.ResponseWriter, r *http.Request) {
		// The measure registry: every kernel a join request can name in
		// options.measure, with its accuracy contract and family.
		writeJSON(w, http.StatusOK, map[string]any{"measures": measure.Describe()})
	})

	mux.HandleFunc("DELETE /graphs/{name}", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		ok, err := svc.DropGraph(name)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no graph %q loaded", name))
			return
		}
		if err != nil {
			// The graph is no longer served, but some on-disk state survived;
			// the client should retry the delete to finish the removal.
			writeError(w, http.StatusInternalServerError,
				fmt.Errorf("graph %q dropped from serving but durable removal incomplete (retry the delete): %w", name, err))
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"dropped": name})
	})

	mux.HandleFunc("POST /graphs/{name}/edges", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		var req edgeUpdateRequest
		if err := decodeJSON(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		adds := make([]graph.Edge, len(req.Add))
		for i, e := range req.Add {
			adds[i] = graph.Edge{U: e.U, V: e.V, W: e.W}
		}
		dels := make([][2]graph.NodeID, len(req.Del))
		for i, d := range req.Del {
			dels[i] = [2]graph.NodeID{d.U, d.V}
		}
		info, err := svc.UpdateEdges(name, adds, dels)
		if err != nil {
			writeSvcError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})

	mux.HandleFunc("POST /join2", func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context() // a disconnected client cancels it, aborting the join
		var req join2Request
		if err := decodeJSON(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		query, err := req.Options.toQuery()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := applyIdentity(r, &query); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if req.Explain {
			pl, err := svc.ExplainJoin2(ctx, req.Graph, req.P.toRef(), req.Q.toRef(), req.K, query)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"plan": pl})
			return
		}
		if req.Cursor < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("join2: cursor must be >= 0, got %d", req.Cursor))
			return
		}
		// k = 0 means "until exhausted" when streaming; the batch form
		// needs a positive page size (a k <= 0 page could never terminate
		// a client's cursor loop).
		if req.Stream && req.K < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("join2: k must be >= 0 when streaming, got %d", req.K))
			return
		}
		if !req.Stream && req.K <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("join2: k must be positive, got %d", req.K))
			return
		}
		if req.Stream {
			st, err := svc.OpenJoin2(ctx, req.Graph, req.P.toRef(), req.Q.toRef(), query)
			if err != nil {
				writeSvcError(w, err)
				return
			}
			defer st.Stop()
			streamNDJSON(svc, w, req.Cursor, req.K, func() (any, bool, error) {
				r, ok, err := st.Next()
				if err != nil || !ok {
					return nil, ok, err
				}
				return pairJSON{P: r.Pair.P, Q: r.Pair.Q, Score: r.Score}, true, nil
			}, st.Truncated)
			return
		}
		// Batch (optionally paged): drain cursor+k, return the page past the
		// cursor. The prefix cache makes page n+1 re-serve page n's work.
		res, meta, err := svc.Join2Meta(ctx, req.Graph, req.P.toRef(), req.Q.toRef(), req.Cursor+req.K, query)
		if err != nil {
			writeSvcError(w, err)
			return
		}
		exhausted := len(res) < req.Cursor+req.K && !meta.Truncated && meta.ClampedK == 0
		if req.Cursor > len(res) {
			res = res[len(res):]
		} else {
			res = res[req.Cursor:]
		}
		pairs := make([]pairJSON, len(res))
		for i, pr := range res {
			pairs[i] = pairJSON{P: pr.Pair.P, Q: pr.Pair.Q, Score: pr.Score}
		}
		// Paging bookkeeping rides on every response — page one of a
		// cursor loop needs "exhausted" as much as page two does.
		body := map[string]any{
			"results":     pairs,
			"cursor":      req.Cursor,
			"next_cursor": req.Cursor + len(pairs),
			"exhausted":   exhausted,
		}
		addMeta(body, meta)
		writeJSON(w, http.StatusOK, body)
	})

	mux.HandleFunc("POST /joinN", func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		var req joinNRequest
		if err := decodeJSON(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		query, err := req.Options.toQuery()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := applyIdentity(r, &query); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		edges := req.Edges
		if len(edges) == 0 {
			shape := req.Shape
			if shape == "" {
				shape = "chain"
			}
			if edges, err = shapeEdges(shape, len(req.Sets)); err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
		}
		refs := make([]SetRef, len(req.Sets))
		for i, s := range req.Sets {
			refs[i] = s.toRef()
		}
		if req.Explain {
			pl, err := svc.ExplainJoinN(ctx, req.Graph, refs, edges, req.K, query)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"plan": pl})
			return
		}
		if req.Cursor < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("joinN: cursor must be >= 0, got %d", req.Cursor))
			return
		}
		if req.Stream && req.K < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("joinN: k must be >= 0 when streaming, got %d", req.K))
			return
		}
		if !req.Stream && req.K <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("joinN: k must be positive, got %d", req.K))
			return
		}
		if req.Stream {
			st, err := svc.OpenJoinN(ctx, req.Graph, refs, edges, query)
			if err != nil {
				writeSvcError(w, err)
				return
			}
			defer st.Stop()
			streamNDJSON(svc, w, req.Cursor, req.K, func() (any, bool, error) {
				a, ok, err := st.Next()
				if err != nil || !ok {
					return nil, ok, err
				}
				return answerJSON{Nodes: a.Nodes, Score: a.Score}, true, nil
			}, st.Truncated)
			return
		}
		answers, meta, err := svc.JoinNMeta(ctx, req.Graph, refs, edges, req.Cursor+req.K, query)
		if err != nil {
			writeSvcError(w, err)
			return
		}
		exhausted := len(answers) < req.Cursor+req.K && !meta.Truncated && meta.ClampedK == 0
		if req.Cursor > len(answers) {
			answers = answers[len(answers):]
		} else {
			answers = answers[req.Cursor:]
		}
		out := make([]answerJSON, len(answers))
		for i, a := range answers {
			out[i] = answerJSON{Nodes: a.Nodes, Score: a.Score}
		}
		body := map[string]any{
			"answers":     out,
			"cursor":      req.Cursor,
			"next_cursor": req.Cursor + len(out),
			"exhausted":   exhausted,
		}
		addMeta(body, meta)
		writeJSON(w, http.StatusOK, body)
	})

	mux.HandleFunc("GET /score", func(w http.ResponseWriter, r *http.Request) {
		qp := r.URL.Query()
		u, errU := strconv.Atoi(qp.Get("u"))
		v, errV := strconv.Atoi(qp.Get("v"))
		if errU != nil || errV != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("score: u and v must be integer node ids"))
			return
		}
		opts, err := optionsFromQuery(qp)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		query, err := opts.toQuery()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := applyIdentity(r, &query); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		score, err := svc.Score(r.Context(), qp.Get("graph"), graph.NodeID(u), graph.NodeID(v), query)
		if err != nil {
			writeSvcError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"score": score})
	})

	// GET /explain is the dry-run convenience route over named sets:
	// ?graph=g&p=U&q=D plans a 2-way join, ?graph=g&sets=U,F,D&shape=chain
	// an n-way one. Knobs: k, m, algo, lambda, dhte, ppr, d, epsilon,
	// relabel, measure. Explicit node-id lists need POST with
	// "explain":true.
	mux.HandleFunc("GET /explain", func(w http.ResponseWriter, r *http.Request) {
		qp := r.URL.Query()
		opts, err := optionsFromQuery(qp)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		k := 0
		if s := qp.Get("k"); s != "" {
			if k, err = strconv.Atoi(s); err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("explain: bad k %q", s))
				return
			}
		}
		query, err := opts.toQuery()
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		graphName := qp.Get("graph")
		if sets := qp.Get("sets"); sets != "" {
			names := strings.Split(sets, ",")
			refs := make([]SetRef, len(names))
			for i, n := range names {
				refs[i] = SetRef{Name: strings.TrimSpace(n)}
			}
			shape := qp.Get("shape")
			if shape == "" {
				shape = "chain"
			}
			edges, err := shapeEdges(shape, len(refs))
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			pl, err := svc.ExplainJoinN(r.Context(), graphName, refs, edges, k, query)
			if err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"plan": pl})
			return
		}
		pl, err := svc.ExplainJoin2(r.Context(), graphName,
			SetRef{Name: qp.Get("p")}, SetRef{Name: qp.Get("q")}, k, query)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"plan": pl})
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats())
	})

	return withRecover(svc, withDrain(svc, mux))
}

// withDrain rejects new work with 503 + Retry-After once the service is
// draining, while health and stats endpoints keep answering (load balancers
// and operators need them most exactly then). Requests already inside a
// handler are unaffected — drain only gates the door.
func withDrain(svc *Service, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if svc.Draining() {
			switch r.URL.Path {
			case "/healthz", "/readyz", "/stats":
			default:
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusServiceUnavailable, ErrDraining)
				return
			}
		}
		h.ServeHTTP(w, r)
	})
}

// withRecover converts a handler panic into a 500 error envelope when the
// response has not started, and into a dropped connection when it has
// (matching net/http's own abort semantics). Either way the panic stops at
// the request boundary: one poisoned request cannot take the daemon down.
func withRecover(svc *Service, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rw := &headerTracker{ResponseWriter: w}
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				panic(p) // deliberate abort; let net/http handle it
			}
			svc.notePanic()
			if !rw.wrote {
				writeError(rw, http.StatusInternalServerError, fmt.Errorf("internal panic: %v", p))
			}
		}()
		h.ServeHTTP(rw, r)
	})
}

// headerTracker records whether the response has started, so the recover
// middleware knows whether a 500 envelope can still be written.
type headerTracker struct {
	http.ResponseWriter
	wrote bool
}

func (t *headerTracker) WriteHeader(code int) {
	t.wrote = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *headerTracker) Write(b []byte) (int, error) {
	t.wrote = true
	return t.ResponseWriter.Write(b)
}

// Unwrap lets http.NewResponseController reach the underlying writer's
// flush and deadline hooks through the tracker.
func (t *headerTracker) Unwrap() http.ResponseWriter { return t.ResponseWriter }

// streamNDJSON drives a pull stream onto the wire as NDJSON: one result
// object per line, flushed as produced, so the client sees the first result
// while the join is still deepening. cursor results are skipped first (the
// "next page" continuation), then up to k results are written (k = 0
// streams to exhaustion). The final line is a terminator object —
// {"done":true,"count":…,"next_cursor":…,"exhausted":…,"truncated":…} on
// success (truncated marks a deadline-budget cut: the lines above it are a
// correct ranking prefix), or {"error":…} if the stream failed mid-flight
// (the HTTP status is already on the wire by then; the in-band error line is
// the only channel left).
//
// Each line write runs under the service's StreamWriteTimeout: a streaming
// request holds admission tokens and pooled engines for its whole lifetime,
// so without the per-line deadline a handful of clients that open a stream
// and stop reading would wedge the admission controller. A client that keeps
// reading, however slowly per line, refreshes the deadline on every write.
func streamNDJSON(svc *Service, w http.ResponseWriter, cursor, k int, next func() (any, bool, error), truncated func() bool) {
	rc := http.NewResponseController(w)
	// The per-line deadlines below are absolute; clear them on the way out
	// or the last one would outlive this response and kill the next request
	// served on the same keep-alive connection.
	defer rc.SetWriteDeadline(time.Time{}) //nolint:errcheck // best effort
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flush := func() { _ = rc.Flush() }
	writeTimeout := svc.WriteTimeout()
	done := func(written int, exhausted bool) {
		line := map[string]any{
			"done":        true,
			"count":       written,
			"next_cursor": cursor + written,
			"exhausted":   exhausted,
		}
		if truncated != nil && truncated() {
			line["truncated"] = true
		}
		_ = enc.Encode(line)
		flush()
	}
	written, skip, exhausted := 0, cursor, false
	for k == 0 || written < k {
		v, ok, err := next()
		if err != nil {
			if errors.Is(err, ErrBudgetExceeded) {
				// The budget cut the ranking short; everything on the wire is
				// a correct prefix, so terminate normally with the marker
				// instead of failing a request that produced valid results.
				done(written, false)
				return
			}
			// The in-band line carries the same envelope shape as a
			// non-streaming error; 500 because the request was accepted.
			body := errorBody(err)
			body["status"] = http.StatusInternalServerError
			_ = enc.Encode(map[string]any{"error": body})
			flush()
			return
		}
		if !ok {
			exhausted = true
			break
		}
		if skip > 0 {
			skip--
			continue
		}
		// Refresh the per-line write deadline (best effort: httptest's
		// recorder does not support deadlines, and a real server that
		// cannot set one just keeps the old behavior).
		if writeTimeout > 0 {
			_ = rc.SetWriteDeadline(time.Now().Add(writeTimeout))
		}
		if err := svc.cfg.Fault.Inject(fault.ResponseWrite); err != nil {
			return // injected write failure: same path as a vanished client
		}
		if err := enc.Encode(v); err != nil {
			return // client went away or stalled; the deferred Stop cleans up
		}
		written++
		flush()
	}
	done(written, exhausted)
}

// writeSvcError maps a service error to its transport status: quota
// rejections are 429 and drain rejections 503 (both with Retry-After — the
// condition is transient by construction), everything else stays a 400.
func writeSvcError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQuotaExceeded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// addMeta folds batch degradation metadata into a response body.
func addMeta(body map[string]any, meta BatchMeta) {
	if meta.ClampedK != 0 {
		body["clamped_k"] = meta.ClampedK
	}
	if meta.Truncated {
		body["truncated"] = true
	}
}

// optionsFromQuery parses the option knobs the GET routes (/score,
// /explain) share from query parameters — one parser, so the two routes
// cannot drift. Knobs a route does not use (e.g. agg on /score) are
// harmlessly ignored downstream.
func optionsFromQuery(qp url.Values) (OptionsJSON, error) {
	opts := OptionsJSON{
		Agg:      qp.Get("agg"),
		Measure:  qp.Get("measure"),
		Relabel:  qp.Get("relabel"),
		Algo:     qp.Get("algo"),
		Accuracy: qp.Get("accuracy"),
		DHTE:     qp.Get("dhte") == "true",
		PPR:      qp.Get("ppr") == "true",
	}
	var err error
	if s := qp.Get("lambda"); s != "" {
		if opts.Lambda, err = strconv.ParseFloat(s, 64); err != nil {
			return opts, fmt.Errorf("options: bad lambda %q", s)
		}
	}
	if s := qp.Get("epsilon"); s != "" {
		if opts.Epsilon, err = strconv.ParseFloat(s, 64); err != nil {
			return opts, fmt.Errorf("options: bad epsilon %q", s)
		}
	}
	if s := qp.Get("d"); s != "" {
		if opts.D, err = strconv.Atoi(s); err != nil {
			return opts, fmt.Errorf("options: bad d %q", s)
		}
	}
	if s := qp.Get("m"); s != "" {
		if opts.M, err = strconv.Atoi(s); err != nil {
			return opts, fmt.Errorf("options: bad m %q", s)
		}
	}
	return opts, nil
}

// decodeJSON strictly decodes a request body.
func decodeJSON(r *http.Request, into any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(into)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errorBody is the consistent error envelope payload: every error response
// (and every in-band NDJSON error line) carries the same shape, so clients
// parse one structure everywhere.
func errorBody(err error) map[string]any {
	return map[string]any{"message": err.Error()}
}

func writeError(w http.ResponseWriter, status int, err error) {
	body := errorBody(err)
	body["status"] = status
	writeJSON(w, status, map[string]any{"error": body})
}
