package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestServiceExplain pins the dry-run planner surface: plans for both query
// forms with every candidate priced, and the forced flag honored.
func TestServiceExplain(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	p, q := SetRef{Name: sets[0].Name}, SetRef{Name: sets[1].Name}

	pl, err := svc.ExplainJoin2(ctx, "g", p, q, 10, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.Estimates) != 7 {
		t.Fatalf("2-way plan has %d estimates, want 7", len(pl.Estimates))
	}
	// The pick is the cheapest *eligible* row: certified estimates are
	// priced but excluded at the default exact accuracy.
	cheapest := ""
	for _, e := range pl.Estimates {
		if !e.Excluded {
			cheapest = e.Algorithm
			break
		}
	}
	if pl.Algorithm != cheapest || pl.Forced {
		t.Fatalf("plan = %+v", pl)
	}

	npl, err := svc.ExplainJoinN(ctx, "g",
		[]SetRef{{Name: sets[0].Name}, {Name: sets[1].Name}, {Name: sets[2].Name}},
		[][2]int{{0, 1}, {1, 2}}, 0, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(npl.Estimates) != 4 {
		t.Fatalf("n-way plan has %d estimates, want 4", len(npl.Estimates))
	}

	forced, err := svc.ExplainJoin2(ctx, "g", p, q, 10, Query{Algorithm: "F-BJ"})
	if err != nil {
		t.Fatal(err)
	}
	if !forced.Forced || forced.Algorithm != "F-BJ" {
		t.Fatalf("forced plan = %+v", forced)
	}
	if _, err := svc.ExplainJoin2(ctx, "g", p, q, 10, Query{Algorithm: "nope"}); err == nil {
		t.Fatal("unknown forced algorithm accepted")
	}

	// Explain is a dry run: no executions were recorded.
	if st := svc.Stats(); len(st.PlanPicks) != 0 || st.PlanRequests == 0 {
		t.Fatalf("stats after explains: %+v", st)
	}
}

// TestServicePlanCacheAndPicks: repeated identical requests hit the plan
// cache (the result cache is disabled to force re-planning on each), picks
// are counted, and the calibration feedback loop records the observed run.
func TestServicePlanCacheAndPicks(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{ResultCacheSize: -1})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	p, q := SetRef{Name: sets[0].Name}, SetRef{Name: sets[1].Name}

	first, err := svc.Join2(ctx, "g", p, q, 10, Query{})
	if err != nil {
		t.Fatal(err)
	}
	want := refJoin2(t, g, sets[0].Nodes(), sets[1].Nodes(), 10)
	if len(first) != len(want) {
		t.Fatalf("first join: %d results, want %d", len(first), len(want))
	}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("rank %d: %+v, want %+v", i, first[i], want[i])
		}
	}

	// The session observed the first run; its calibration must have data.
	svc.mu.Lock()
	if len(svc.sessions) != 1 {
		svc.mu.Unlock()
		t.Fatalf("sessions = %d, want 1", len(svc.sessions))
	}
	var sess *session
	for _, s := range svc.sessions {
		sess = s
	}
	svc.mu.Unlock()
	if sess.calib.Samples() == 0 {
		t.Fatal("calibration saw no feedback after a completed join")
	}

	// Request 2 re-plans: the first run's calibration feedback moved the
	// generation (the cost unit went from analytic to observed). Request 3
	// sees a stable generation — identical runs cannot drift the EWMA —
	// and must hit the plan cache.
	for i := 0; i < 2; i++ {
		if _, err := svc.Join2(ctx, "g", p, q, 10, Query{}); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.PlanRequests < 3 {
		t.Fatalf("plan requests = %d, want >= 3", st.PlanRequests)
	}
	if total := sumPicks(st.PlanPicks); total < 3 {
		t.Fatalf("plan picks = %v, want three executions", st.PlanPicks)
	}
	if st.PlanCacheHits == 0 {
		t.Fatalf("no plan cache hits: %+v", st)
	}
}

func sumPicks(picks map[string]int64) int64 {
	var total int64
	for _, n := range picks {
		total += n
	}
	return total
}

// TestServiceForcedAlgorithm: forcing any registered 2-way executor through
// Query.Algorithm serves the bit-identical ranking, and bad names fail.
func TestServiceForcedAlgorithm(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{ResultCacheSize: -1})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	p, q := SetRef{Name: sets[0].Name}, SetRef{Name: sets[1].Name}
	want := refJoin2(t, g, sets[0].Nodes(), sets[1].Nodes(), 15)
	for _, name := range []string{"B-IDJ-Y", "B-IDJ-X", "B-BJ", "F-BJ", "F-IDJ"} {
		got, err := svc.Join2(ctx, "g", p, q, 15, Query{Algorithm: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s rank %d: %+v, want %+v", name, i, got[i], want[i])
			}
		}
	}
	if _, err := svc.Join2(ctx, "g", p, q, 15, Query{Algorithm: "PJ-i"}); err == nil {
		t.Fatal("n-way executor accepted on a 2-way request")
	}
	if _, err := svc.JoinN(ctx, "g",
		[]SetRef{{Name: sets[0].Name}, {Name: sets[1].Name}},
		[][2]int{{0, 1}}, 5, Query{Algorithm: "AP"}); err != nil {
		t.Fatalf("forcing AP n-way: %v", err)
	}
}

// TestHTTPExplain covers the wire surface: explain:true dry runs on both
// join endpoints, the GET /explain route, forced algorithms via options,
// and the planner counters in /stats.
func TestHTTPExplain(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	post := func(path, body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}
	planOf := func(out map[string]any) map[string]any {
		t.Helper()
		pl, ok := out["plan"].(map[string]any)
		if !ok {
			t.Fatalf("no plan in %v", out)
		}
		return pl
	}

	code, out := post("/join2", `{"graph":"g","p":{"set":"`+sets[0].Name+`"},"q":{"set":"`+sets[1].Name+`"},"k":10,"explain":true}`)
	if code != http.StatusOK {
		t.Fatalf("join2 explain: %d %v", code, out)
	}
	pl := planOf(out)
	if pl["algorithm"] == "" || len(pl["estimates"].([]any)) != 7 {
		t.Fatalf("join2 plan = %v", pl)
	}

	code, out = post("/joinN", `{"graph":"g","sets":[{"set":"`+sets[0].Name+`"},{"set":"`+sets[1].Name+`"}],"shape":"chain","k":5,"explain":true}`)
	if code != http.StatusOK {
		t.Fatalf("joinN explain: %d %v", code, out)
	}
	if pl := planOf(out); len(pl["estimates"].([]any)) != 4 {
		t.Fatalf("joinN plan = %v", pl)
	}

	// Forced algorithm over the wire serves identical results.
	code, def := post("/join2", `{"graph":"g","p":{"set":"`+sets[0].Name+`"},"q":{"set":"`+sets[1].Name+`"},"k":5}`)
	if code != http.StatusOK {
		t.Fatalf("default join2: %d %v", code, def)
	}
	code, forced := post("/join2", `{"graph":"g","p":{"set":"`+sets[0].Name+`"},"q":{"set":"`+sets[1].Name+`"},"k":5,"options":{"algo":"B-BJ"}}`)
	if code != http.StatusOK {
		t.Fatalf("forced join2: %d %v", code, forced)
	}
	if defJSON, forcedJSON := jsonString(t, def["results"]), jsonString(t, forced["results"]); defJSON != forcedJSON {
		t.Fatalf("forced B-BJ differs from default:\n%s\n%s", forcedJSON, defJSON)
	}
	if code, out = post("/join2", `{"graph":"g","p":{"set":"`+sets[0].Name+`"},"q":{"set":"`+sets[1].Name+`"},"k":5,"options":{"algo":"XXX"}}`); code != http.StatusBadRequest {
		t.Fatalf("unknown algo: %d %v", code, out)
	}

	// GET /explain for both forms.
	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}
	code, out = get("/explain?graph=g&p=" + sets[0].Name + "&q=" + sets[1].Name + "&k=10")
	if code != http.StatusOK {
		t.Fatalf("GET /explain 2-way: %d %v", code, out)
	}
	planOf(out)
	code, out = get("/explain?graph=g&sets=" + sets[0].Name + "," + sets[1].Name + "," + sets[2].Name + "&shape=triangle")
	if code != http.StatusOK {
		t.Fatalf("GET /explain n-way: %d %v", code, out)
	}
	planOf(out)
	if code, out = get("/explain?graph=g&p=nope&q=" + sets[1].Name); code != http.StatusBadRequest {
		t.Fatalf("GET /explain bad set: %d %v", code, out)
	}

	// /stats surfaces the planner counters after a real execution.
	if code, _ := post("/join2", `{"graph":"g","p":{"set":"`+sets[0].Name+`"},"q":{"set":"`+sets[1].Name+`"},"k":5}`); code != http.StatusOK {
		t.Fatal("warm-up join failed")
	}
	code, stats := get("/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats["plan_requests"].(float64) == 0 {
		t.Fatalf("stats missing plan_requests: %v", stats)
	}
	if _, ok := stats["plan_picks"].(map[string]any); !ok {
		t.Fatalf("stats missing plan_picks: %v", stats)
	}
}

func jsonString(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestServiceAccuracyFast covers the served accuracy knob end to end: a
// fast-accuracy request plans onto a certified executor, returns the
// bit-identical ranking, feeds the fast-kernel calibration bucket (not the
// exact one), and surfaces its re-verification work in Stats; an unknown
// spelling fails the request.
func TestServiceAccuracyFast(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{ResultCacheSize: -1})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	p, q := SetRef{Name: sets[0].Name}, SetRef{Name: sets[1].Name}

	if _, err := svc.Join2(ctx, "g", p, q, 10, Query{Accuracy: "sloppy"}); err == nil {
		t.Fatal("unknown accuracy accepted")
	}

	pl, err := svc.ExplainJoin2(ctx, "g", p, q, 10, Query{Accuracy: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	if !planCertified(pl) {
		t.Fatalf("fast-accuracy plan picked %s (not certified); estimates %+v", pl.Algorithm, pl.Estimates)
	}

	got, err := svc.Join2(ctx, "g", p, q, 10, Query{Accuracy: "fast"})
	if err != nil {
		t.Fatal(err)
	}
	want := refJoin2(t, g, sets[0].Nodes(), sets[1].Nodes(), 10)
	if len(got) != len(want) {
		t.Fatalf("fast join: %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank %d: %+v, want %+v", i, got[i], want[i])
		}
	}

	st := svc.Stats()
	if st.KernelPicks < 1 {
		t.Fatalf("kernel picks = %d, want >= 1", st.KernelPicks)
	}
	if st.Reverified < 10 {
		t.Fatalf("reverified = %d, want >= k", st.Reverified)
	}
	if st.FallbackPairs != st.Reverified-10 {
		t.Fatalf("fallback pairs = %d, want reverified - k = %d", st.FallbackPairs, st.Reverified-10)
	}

	// Calibration is keyed by kernel: the certified run observed into the
	// fast bucket and left the exact bucket untouched.
	svc.mu.Lock()
	var sess *session
	for _, s := range svc.sessions {
		sess = s
	}
	svc.mu.Unlock()
	if sess.calibFast.Samples() == 0 {
		t.Fatal("fast-kernel calibration saw no feedback")
	}
	if sess.calib.Samples() != 0 {
		t.Fatalf("exact calibration polluted by a certified run: %d samples", sess.calib.Samples())
	}

	// An exact request afterwards must not reuse the fast plan-cache slot.
	exact, err := svc.ExplainJoin2(ctx, "g", p, q, 10, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if planCertified(exact) {
		t.Fatalf("exact-accuracy plan picked certified %s", exact.Algorithm)
	}
}
