package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/graph"
)

// startServer loads the test graph through the HTTP API and returns the
// httptest server plus the reference graph and sets.
func startServer(t *testing.T) (*httptest.Server, *graph.Graph, []*graph.NodeSet) {
	t.Helper()
	g, sets := testGraph(t)
	srv := httptest.NewServer(NewHandler(New(Config{})))
	t.Cleanup(srv.Close)

	var buf bytes.Buffer
	if err := graph.WriteText(&buf, g, sets...); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, srv.URL+"/graphs/test", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("PUT /graphs/test: %s: %s", resp.Status, body)
	}
	var info GraphInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Nodes != g.NumNodes() || info.Edges != g.NumEdges() {
		t.Fatalf("load response %+v does not describe the graph", info)
	}
	return srv, g, sets
}

// postJSON posts a JSON body and decodes the JSON response into out.
func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s response: %v", url, err)
	}
	return resp.StatusCode
}

// TestHTTPEndToEnd is the njoind integration test: load a graph over HTTP,
// fire concurrent join2 and joinN requests, and require every response to be
// bit-identical to the corresponding direct dhtjoin-equivalent call; then
// verify the stats endpoint moved monotonically.
func TestHTTPEndToEnd(t *testing.T) {
	srv, g, sets := startServer(t)

	want2 := refJoin2(t, g, sets[0].Nodes(), sets[1].Nodes(), 10)
	wantN := refJoinN(t, g, sets, 5)

	var before Stats
	if code := getJSON(t, srv.URL+"/stats", &before); code != http.StatusOK {
		t.Fatalf("GET /stats = %d", code)
	}

	join2Req := map[string]any{
		"graph": "test",
		"p":     map[string]any{"set": sets[0].Name},
		"q":     map[string]any{"set": sets[1].Name},
		"k":     10,
	}
	joinNReq := map[string]any{
		"graph": "test",
		"sets": []map[string]any{
			{"set": sets[0].Name}, {"set": sets[1].Name}, {"set": sets[2].Name},
		},
		"shape": "chain",
		"k":     5,
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if (w+i)%2 == 0 {
					var out struct {
						Results []pairJSON `json:"results"`
					}
					if code := postJSON(t, srv.URL+"/join2", join2Req, &out); code != http.StatusOK {
						errs <- fmt.Errorf("POST /join2 = %d", code)
						return
					}
					if len(out.Results) != len(want2) {
						errs <- fmt.Errorf("join2: %d results, want %d", len(out.Results), len(want2))
						return
					}
					for r := range out.Results {
						if out.Results[r].P != want2[r].Pair.P ||
							out.Results[r].Q != want2[r].Pair.Q ||
							out.Results[r].Score != want2[r].Score {
							errs <- fmt.Errorf("join2 rank %d: %+v != %+v", r, out.Results[r], want2[r])
							return
						}
					}
				} else {
					var out struct {
						Answers []answerJSON `json:"answers"`
					}
					if code := postJSON(t, srv.URL+"/joinN", joinNReq, &out); code != http.StatusOK {
						errs <- fmt.Errorf("POST /joinN = %d", code)
						return
					}
					if len(out.Answers) != len(wantN) {
						errs <- fmt.Errorf("joinN: %d answers, want %d", len(out.Answers), len(wantN))
						return
					}
					for r := range out.Answers {
						if out.Answers[r].Score != wantN[r].Score {
							errs <- fmt.Errorf("joinN rank %d: score %v != %v", r, out.Answers[r].Score, wantN[r].Score)
							return
						}
						for j := range out.Answers[r].Nodes {
							if out.Answers[r].Nodes[j] != wantN[r].Nodes[j] {
								errs <- fmt.Errorf("joinN rank %d: nodes %v != %v", r, out.Answers[r].Nodes, wantN[r].Nodes)
								return
							}
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var after Stats
	if code := getJSON(t, srv.URL+"/stats", &after); code != http.StatusOK {
		t.Fatalf("GET /stats = %d", code)
	}
	if after.Join2Requests <= before.Join2Requests || after.JoinNRequests <= before.JoinNRequests {
		t.Fatalf("request counters did not advance: %+v -> %+v", before, after)
	}
	if after.Walks < before.Walks || after.ResultMisses < before.ResultMisses {
		t.Fatalf("stats counters regressed: %+v -> %+v", before, after)
	}
	if after.ResultHits == 0 {
		t.Fatal("repeated identical requests produced no result-cache hits")
	}
}

// TestHTTPScoreAndGraphLifecycle covers /score, /graphs listing, and DELETE.
func TestHTTPScoreAndGraphLifecycle(t *testing.T) {
	srv, g, sets := startServer(t)
	u, v := sets[0].Nodes()[0], sets[1].Nodes()[0]

	// /score must equal the direct engine evaluation (dhtjoin.Score).
	svc := New(Config{})
	if err := svc.LoadGraph("ref", g, sets); err != nil {
		t.Fatal(err)
	}
	want, err := svc.Score(context.Background(), "ref", u, v, Query{})
	if err != nil {
		t.Fatal(err)
	}
	var scoreResp struct {
		Score float64 `json:"score"`
	}
	url := fmt.Sprintf("%s/score?graph=test&u=%d&v=%d", srv.URL, u, v)
	if code := getJSON(t, url, &scoreResp); code != http.StatusOK {
		t.Fatalf("GET /score = %d", code)
	}
	if scoreResp.Score != want {
		t.Fatalf("score = %v, want %v", scoreResp.Score, want)
	}

	var list struct {
		Graphs []GraphInfo `json:"graphs"`
	}
	if code := getJSON(t, srv.URL+"/graphs", &list); code != http.StatusOK || len(list.Graphs) != 1 {
		t.Fatalf("GET /graphs = %d, %+v", code, list)
	}

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/graphs/test", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /graphs/test = %d", resp.StatusCode)
	}
	// Joins on the dropped graph now fail with a client error.
	var errResp map[string]any
	code := postJSON(t, srv.URL+"/join2", map[string]any{
		"graph": "test",
		"p":     map[string]any{"ids": []int{0}},
		"q":     map[string]any{"ids": []int{1}},
		"k":     1,
	}, &errResp)
	if code != http.StatusBadRequest {
		t.Fatalf("join2 on dropped graph = %d, want 400", code)
	}
}

// TestHTTPBadRequests: malformed bodies and unknown fields are rejected.
func TestHTTPBadRequests(t *testing.T) {
	srv, _, sets := startServer(t)
	var out map[string]any
	if code := postJSON(t, srv.URL+"/join2", map[string]any{
		"graph": "test", "bogus": 1,
	}, &out); code != http.StatusBadRequest {
		t.Fatalf("unknown field = %d, want 400", code)
	}
	if code := postJSON(t, srv.URL+"/join2", map[string]any{
		"graph": "test",
		"p":     map[string]any{"set": sets[0].Name},
		"q":     map[string]any{"set": sets[1].Name},
		"k":     5,
		"options": map[string]any{
			"relabel": "sideways",
		},
	}, &out); code != http.StatusBadRequest {
		t.Fatalf("bad relabel mode = %d, want 400", code)
	}
	if code := postJSON(t, srv.URL+"/joinN", map[string]any{
		"graph": "test",
		"sets":  []map[string]any{{"set": sets[0].Name}, {"set": sets[1].Name}},
		"shape": "pentagram",
		"k":     5,
	}, &out); code != http.StatusBadRequest {
		t.Fatalf("bad shape = %d, want 400", code)
	}
}

// ndjsonLines posts a streaming request and returns the decoded NDJSON
// lines (results first, terminator or error object last).
func ndjsonLines(t *testing.T, url string, body any) ([]map[string]any, string) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream request = %d: %s", resp.StatusCode, raw)
	}
	ctype := resp.Header.Get("Content-Type")
	var lines []map[string]any
	dec := json.NewDecoder(resp.Body)
	for {
		var line map[string]any
		if err := dec.Decode(&line); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, line)
	}
	return lines, ctype
}

// TestHTTPStreamingJoin2: the NDJSON response must carry the same ranking
// as the batch endpoint, one result per line, with a done terminator.
func TestHTTPStreamingJoin2(t *testing.T) {
	srv, g, sets := startServer(t)
	want := refJoin2(t, g, sets[0].Nodes(), sets[1].Nodes(), 6)

	lines, ctype := ndjsonLines(t, srv.URL+"/join2", map[string]any{
		"graph":  "test",
		"p":      map[string]any{"set": sets[0].Name},
		"q":      map[string]any{"set": sets[1].Name},
		"k":      6,
		"stream": true,
	})
	if ctype != "application/x-ndjson" {
		t.Fatalf("content type %q", ctype)
	}
	if len(lines) != 7 {
		t.Fatalf("got %d lines, want 6 results + terminator", len(lines))
	}
	for i, wr := range want {
		line := lines[i]
		if graph.NodeID(line["p"].(float64)) != wr.Pair.P ||
			graph.NodeID(line["q"].(float64)) != wr.Pair.Q ||
			line["score"].(float64) != wr.Score {
			t.Fatalf("line %d = %v, want %+v", i, line, wr)
		}
	}
	last := lines[6]
	if last["done"] != true || last["count"].(float64) != 6 || last["exhausted"] != false {
		t.Fatalf("terminator = %v", last)
	}
	if last["next_cursor"].(float64) != 6 {
		t.Fatalf("terminator cursor = %v", last["next_cursor"])
	}
}

// TestHTTPStreamingJoinN: NDJSON for the n-way endpoint, including k=0
// (stream to exhaustion) and a cursor skip.
func TestHTTPStreamingJoinN(t *testing.T) {
	srv, g, sets := startServer(t)
	wantAll := refJoinN(t, g, sets, 1<<20)

	lines, _ := ndjsonLines(t, srv.URL+"/joinN", map[string]any{
		"graph":  "test",
		"sets":   []map[string]any{{"set": sets[0].Name}, {"set": sets[1].Name}, {"set": sets[2].Name}},
		"shape":  "chain",
		"k":      0,
		"cursor": 2,
		"stream": true,
	})
	last := lines[len(lines)-1]
	if last["done"] != true || last["exhausted"] != true {
		t.Fatalf("terminator = %v", last)
	}
	results := lines[:len(lines)-1]
	if len(results) != len(wantAll)-2 {
		t.Fatalf("streamed %d results, want %d after cursor 2", len(results), len(wantAll)-2)
	}
	for i, line := range results {
		wa := wantAll[i+2]
		if line["score"].(float64) != wa.Score {
			t.Fatalf("line %d score %v, want %v", i, line["score"], wa.Score)
		}
	}
	if last["next_cursor"].(float64) != float64(2+len(results)) {
		t.Fatalf("terminator next_cursor = %v", last["next_cursor"])
	}
}

// TestHTTPCursorPaging: two batch pages must concatenate to the one-shot
// ranking, with next_cursor/exhausted bookkeeping.
func TestHTTPCursorPaging(t *testing.T) {
	srv, g, sets := startServer(t)
	want := refJoin2(t, g, sets[0].Nodes(), sets[1].Nodes(), 10)

	body := func(k, cursor int) map[string]any {
		return map[string]any{
			"graph":  "test",
			"p":      map[string]any{"set": sets[0].Name},
			"q":      map[string]any{"set": sets[1].Name},
			"k":      k,
			"cursor": cursor,
		}
	}
	var page1 struct {
		Results []pairJSON `json:"results"`
	}
	if code := postJSON(t, srv.URL+"/join2", body(5, 0), &page1); code != http.StatusOK {
		t.Fatalf("page 1 = %d", code)
	}
	var page2 struct {
		Results    []pairJSON `json:"results"`
		Cursor     int        `json:"cursor"`
		NextCursor int        `json:"next_cursor"`
		Exhausted  bool       `json:"exhausted"`
	}
	if code := postJSON(t, srv.URL+"/join2", body(5, 5), &page2); code != http.StatusOK {
		t.Fatalf("page 2 = %d", code)
	}
	if page2.Cursor != 5 || page2.NextCursor != 10 || page2.Exhausted {
		t.Fatalf("page 2 bookkeeping: %+v", page2)
	}
	got := append(page1.Results, page2.Results...)
	if len(got) != len(want) {
		t.Fatalf("pages total %d, want %d", len(got), len(want))
	}
	for i, wr := range want {
		if got[i].P != wr.Pair.P || got[i].Q != wr.Pair.Q || got[i].Score != wr.Score {
			t.Fatalf("paged rank %d = %+v, want %+v", i, got[i], wr)
		}
	}
}

// TestHTTPErrorEnvelope: every 4xx body must carry the consistent
// {"error": {"status", "message"}} envelope.
func TestHTTPErrorEnvelope(t *testing.T) {
	srv, _, sets := startServer(t)
	cases := []struct {
		name string
		body map[string]any
	}{
		{"bad k", map[string]any{
			"graph": "test",
			"p":     map[string]any{"set": sets[0].Name},
			"q":     map[string]any{"set": sets[1].Name},
			"k":     0,
		}},
		{"missing graph", map[string]any{
			"graph": "nope",
			"p":     map[string]any{"set": sets[0].Name},
			"q":     map[string]any{"set": sets[1].Name},
			"k":     3,
		}},
		{"negative cursor", map[string]any{
			"graph":  "test",
			"p":      map[string]any{"set": sets[0].Name},
			"q":      map[string]any{"set": sets[1].Name},
			"k":      3,
			"cursor": -1,
		}},
		{"unknown set", map[string]any{
			"graph": "test",
			"p":     map[string]any{"set": "ghosts"},
			"q":     map[string]any{"set": sets[1].Name},
			"k":     3,
		}},
	}
	for _, tc := range cases {
		var out struct {
			Error struct {
				Status  int    `json:"status"`
				Message string `json:"message"`
			} `json:"error"`
		}
		code := postJSON(t, srv.URL+"/join2", tc.body, &out)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, code)
		}
		if out.Error.Status != http.StatusBadRequest || out.Error.Message == "" {
			t.Fatalf("%s: envelope %+v", tc.name, out.Error)
		}
	}
}
