package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/join2"
)

// serverFor wires a service with a caller-chosen Config into an httptest
// server with the standard test graph loaded directly (no HTTP PUT).
func serverFor(t *testing.T, cfg Config) (*httptest.Server, *Service, *graph.Graph, []*graph.NodeSet) {
	t.Helper()
	g, sets := testGraph(t)
	svc := New(cfg)
	if err := svc.LoadGraph("test", g, sets); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(svc))
	t.Cleanup(srv.Close)
	return srv, svc, g, sets
}

// TestHTTPDrain: after StartDrain, new queries get 503 with Retry-After and
// /readyz flips, while the stream opened before the drain runs to its done
// terminator — draining gates the door, it does not cut connections.
func TestHTTPDrain(t *testing.T) {
	srv, svc, _, sets := serverFor(t, Config{})

	body, _ := json.Marshal(map[string]any{
		"graph":  "test",
		"p":      map[string]any{"set": sets[0].Name},
		"q":      map[string]any{"set": sets[1].Name},
		"k":      0, // to exhaustion: the stream is still open when we drain
		"stream": true,
	})
	resp, err := http.Post(srv.URL+"/join2", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream open = %d", resp.StatusCode)
	}
	dec := json.NewDecoder(resp.Body)
	for i := 0; i < 3; i++ {
		var line map[string]any
		if err := dec.Decode(&line); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if line["done"] == true {
			t.Fatalf("stream exhausted after %d lines; graph too small for this test", i)
		}
	}

	svc.StartDrain()

	// New queries are rejected with 503 + Retry-After.
	post, err := http.Post(srv.URL+"/join2", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(post.Body)
	post.Body.Close()
	if post.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("join during drain = %d, want 503 (%s)", post.StatusCode, raw)
	}
	if post.Header.Get("Retry-After") == "" {
		t.Fatal("503 during drain lacks Retry-After")
	}
	if !strings.Contains(string(raw), "draining") {
		t.Fatalf("drain rejection body %q does not say why", raw)
	}

	// Load balancers see not-ready; liveness and operator stats still answer.
	var ready map[string]any
	if code := getJSON(t, srv.URL+"/readyz", &ready); code != http.StatusServiceUnavailable || ready["draining"] != true {
		t.Fatalf("/readyz during drain = %d %v", code, ready)
	}
	var health map[string]any
	if code := getJSON(t, srv.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("/healthz during drain = %d", code)
	}
	var stats Stats
	if code := getJSON(t, srv.URL+"/stats", &stats); code != http.StatusOK || !stats.Draining {
		t.Fatalf("/stats during drain = %d, draining=%v", code, stats.Draining)
	}

	// The in-flight stream finishes normally under drain.
	sawDone := false
	for !sawDone {
		var line map[string]any
		if err := dec.Decode(&line); err != nil {
			t.Fatalf("draining stream died early: %v", err)
		}
		sawDone = line["done"] == true
	}
	if n := poolOutstanding(svc); n != 0 {
		t.Fatalf("%d engines outstanding after drained stream", n)
	}
}

// smallBufListener pins an explicit (small) kernel send buffer on accepted
// connections; explicit SO_SNDBUF disables auto-tuning, so a non-reading
// client makes the server's writes block instead of vanishing into a
// megabyte of kernel buffer.
type smallBufListener struct{ net.Listener }

func (l smallBufListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		if tc, ok := c.(*net.TCPConn); ok {
			tc.SetWriteBuffer(8 << 10)
		}
	}
	return c, err
}

// TestHTTPStreamWriteDeadline: a client that opens a k=0 stream over the full
// node set and then never reads must not pin engines forever — the per-line
// write deadline cuts the connection and the handler unwinds.
func TestHTTPStreamWriteDeadline(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{StreamWriteTimeout: 300 * time.Millisecond})
	if err := svc.LoadGraph("test", g, sets); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewUnstartedServer(NewHandler(svc))
	srv.Listener = smallBufListener{srv.Listener}
	srv.Start()
	t.Cleanup(srv.Close)

	// All nodes on both sides: ~n² result lines, far beyond what the socket
	// buffers can absorb for a reader that never drains them.
	all := make([]graph.NodeID, g.NumNodes())
	for i := range all {
		all[i] = graph.NodeID(i)
	}
	body, _ := json.Marshal(map[string]any{
		"graph":  "test",
		"p":      map[string]any{"ids": all},
		"q":      map[string]any{"ids": all},
		"k":      0,
		"stream": true,
	})
	// A tiny client receive buffer keeps the kernel from absorbing the whole
	// response on the client's behalf: once it and the server's send buffer
	// fill, the per-line write blocks and the deadline fires.
	client := &http.Client{Transport: &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			c, err := (&net.Dialer{}).DialContext(ctx, network, addr)
			if err != nil {
				return nil, err
			}
			if tc, ok := c.(*net.TCPConn); ok {
				if err := tc.SetReadBuffer(4096); err != nil {
					return nil, err
				}
			}
			return c, nil
		},
	}}
	resp, err := client.Post(srv.URL+"/join2", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream open = %d", resp.StatusCode)
	}

	// Read nothing. The server must give up on its own.
	waitFor(t, func() bool { return poolOutstanding(svc) == 0 })
	free, waiting, _ := svc.adm.snapshot()
	if waiting != 0 || free != svc.adm.total {
		t.Fatalf("admission after write-deadline cut: free=%d/%d waiting=%d", free, svc.adm.total, waiting)
	}

	// Whatever made it into the buffers must be a clean prefix with no done
	// terminator: the stream was cut, not completed.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			break // trailing partial line at the cut point
		}
		if line["done"] == true {
			t.Fatal("cut stream carries a done terminator")
		}
		lines++
	}
	t.Logf("write-deadline cut after %d buffered lines", lines)
}

// TestHTTPPutDeleteRace: concurrent PUT and DELETE of the same graph name
// must never 500 — the load response is computed from the parsed graph, not
// re-fetched from the registry it may already have been deleted from.
func TestHTTPPutDeleteRace(t *testing.T) {
	srv, _, g, sets := serverFor(t, Config{})
	var text bytes.Buffer
	if err := graph.WriteText(&text, g, sets...); err != nil {
		t.Fatal(err)
	}
	payload := text.Bytes()

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			req, _ := http.NewRequest(http.MethodPut, srv.URL+"/graphs/raced", bytes.NewReader(payload))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Errorf("PUT %d: %v", i, err)
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("PUT %d = %d: %s", i, resp.StatusCode, raw)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/graphs/raced", nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Errorf("DELETE %d: %v", i, err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
				t.Errorf("DELETE %d = %d", i, resp.StatusCode)
				return
			}
		}
	}()
	wg.Wait()
}

// TestBudgetTruncation: a deadline budget that expires mid-join yields a
// correct-but-short ranking prefix with the truncation marker, not an error
// and not garbage.
func TestBudgetTruncation(t *testing.T) {
	g, sets := testGraph(t)
	// A join this size makes only a handful of walk-round polls, so the
	// injected latency must dominate the budget per poll, not per result.
	inj := fault.New(1)
	inj.Add(fault.WalkRound, fault.Rule{Every: 1, Delay: 30 * time.Millisecond})
	svc := New(Config{Fault: inj})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	p, q := SetRef{Name: sets[0].Name}, SetRef{Name: sets[1].Name}

	res, meta, err := svc.Join2Meta(context.Background(), "g", p, q, 500, Query{Budget: 50 * time.Millisecond})
	if err != nil {
		t.Fatalf("budgeted join errored instead of truncating: %v", err)
	}
	if !meta.Truncated {
		t.Fatalf("50ms budget against 30ms/round latency was not truncated (%d results)", len(res))
	}
	if len(res) >= 500 {
		t.Fatalf("truncated join returned all %d results", len(res))
	}
	if len(res) > 0 {
		want := refJoin2(t, g, sets[0].Nodes(), sets[1].Nodes(), len(res))
		for i := range res {
			if res[i] != want[i] {
				t.Fatalf("truncated prefix rank %d: %+v, want %+v", i, res[i], want[i])
			}
		}
	}
	if svc.Stats().BudgetTruncations == 0 {
		t.Fatal("BudgetTruncations counter never moved")
	}

	// The plain Join2 signature reports the same outcome as an errors.Is-able
	// error alongside the prefix.
	res2, err := svc.Join2(context.Background(), "g", p, q, 500, Query{Budget: 50 * time.Millisecond})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("Join2 under budget = %v, want ErrBudgetExceeded", err)
	}
	if len(res2) >= 500 {
		t.Fatalf("Join2 under budget returned all %d results", len(res2))
	}

	// Stream handles surface it through Next's error and Truncated().
	st, err := svc.OpenJoin2(context.Background(), "g", p, q, Query{Budget: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	for {
		_, ok, err := st.Next()
		if err != nil {
			if !errors.Is(err, ErrBudgetExceeded) {
				t.Fatalf("budgeted stream died with %v", err)
			}
			break
		}
		if !ok {
			t.Fatal("budgeted stream exhausted the whole ranking despite latency faults")
		}
	}
	if !st.Truncated() {
		t.Fatal("stream does not report Truncated after budget expiry")
	}
	if n := poolOutstanding(svc); n != 0 {
		t.Fatalf("%d engines outstanding after budget truncations", n)
	}
}

// TestShedClamp: when admission is saturated and the queue is past ShedQueue,
// over-demanding cache misses degrade — a cached prefix of any length is
// served as-is, and uncached demands are clamped to ShedK. Both report the
// clamp; both stay exact-top-of-ranking.
func TestShedClamp(t *testing.T) {
	g, sets := testGraph(t)
	svc := New(Config{MaxConcurrency: 1, ShedQueue: 1})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	pA, qA := SetRef{Name: sets[0].Name}, SetRef{Name: sets[1].Name}
	pB, qB := SetRef{Name: sets[0].Name}, SetRef{Name: sets[2].Name}
	ctx := context.Background()

	// Warm the cache for combo A while the service is unloaded.
	warm, err := svc.Join2(ctx, "g", pA, qA, 5, Query{})
	if err != nil {
		t.Fatal(err)
	}

	// Saturate: one holder owns the only token, one waiter queues behind it.
	holder, err := svc.OpenJoin2(ctx, "g", pA, qA, Query{})
	if err != nil {
		t.Fatal(err)
	}
	waiterCtx, cancelWaiter := context.WithCancel(ctx)
	defer cancelWaiter()
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		if wg, err := svc.adm.acquire(waiterCtx, "w", classInteractive, 1); err == nil {
			svc.adm.release(wg)
		}
	}()
	waitFor(t, func() bool { return svc.Shedding() })

	// Over-demanding hit on the warmed combo: served from the cached prefix
	// without touching admission, clamp reported.
	res, meta, err := svc.Join2Meta(ctx, "g", pA, qA, 100, Query{})
	if err != nil {
		t.Fatal(err)
	}
	if meta.ClampedK != len(warm) || len(res) != len(warm) {
		t.Fatalf("shed hit: clamped_k=%d results=%d, want %d", meta.ClampedK, len(res), len(warm))
	}
	for i := range res {
		if res[i] != warm[i] {
			t.Fatalf("shed hit rank %d: %+v, want %+v", i, res[i], warm[i])
		}
	}

	// Over-demanding miss on an uncached combo: clamped to ShedK. It still
	// needs a token, so release the holder and let the queue circulate.
	type outcome struct {
		res  []join2.Result
		meta BatchMeta
		err  error
	}
	missCh := make(chan outcome, 1)
	go func() {
		res, meta, err := svc.Join2Meta(ctx, "g", pB, qB, 100, Query{})
		missCh <- outcome{res, meta, err}
	}()
	waitFor(t, func() bool { _, waiting, _ := svc.adm.snapshot(); return waiting >= 2 })
	holder.Stop()
	out := <-missCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	if out.meta.ClampedK != svc.ShedK() || len(out.res) != svc.ShedK() {
		t.Fatalf("shed miss: clamped_k=%d results=%d, want %d", out.meta.ClampedK, len(out.res), svc.ShedK())
	}
	want := refJoin2(t, g, sets[0].Nodes(), sets[2].Nodes(), svc.ShedK())
	for i := range out.res {
		if out.res[i] != want[i] {
			t.Fatalf("shed miss rank %d: %+v, want %+v", i, out.res[i], want[i])
		}
	}
	cancelWaiter()
	<-waiterDone
	if svc.Stats().ShedClamps < 2 {
		t.Fatalf("ShedClamps = %d, want >= 2", svc.Stats().ShedClamps)
	}
}

// TestHTTPBudgetTruncation: the wire surfaces budget truncation as a 200
// with "truncated":true (batch) and a truncated terminator (stream) — slow
// joins under a budget degrade, they do not fail.
func TestHTTPBudgetTruncation(t *testing.T) {
	g, sets := testGraph(t)
	inj := fault.New(3)
	inj.Add(fault.WalkRound, fault.Rule{Every: 1, Delay: 30 * time.Millisecond})
	svc := New(Config{Fault: inj})
	if err := svc.LoadGraph("test", g, sets); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()

	mkBody := func(stream bool) map[string]any {
		return map[string]any{
			"graph":   "test",
			"p":       map[string]any{"set": sets[0].Name},
			"q":       map[string]any{"set": sets[1].Name},
			"k":       500,
			"stream":  stream,
			"options": map[string]any{"budget_ms": 50},
		}
	}

	var batch struct {
		Results   []pairJSON `json:"results"`
		Truncated bool       `json:"truncated"`
		Exhausted bool       `json:"exhausted"`
	}
	if code := postJSON(t, srv.URL+"/join2", mkBody(false), &batch); code != http.StatusOK {
		t.Fatalf("budgeted batch = %d", code)
	}
	if !batch.Truncated || batch.Exhausted {
		t.Fatalf("budgeted batch meta: truncated=%v exhausted=%v", batch.Truncated, batch.Exhausted)
	}
	if len(batch.Results) >= 500 {
		t.Fatalf("budgeted batch returned all %d results", len(batch.Results))
	}

	lines, _ := ndjsonLines(t, srv.URL+"/join2", mkBody(true))
	last := lines[len(lines)-1]
	if last["done"] != true || last["truncated"] != true {
		t.Fatalf("budgeted stream terminator = %v", last)
	}
	if cnt := last["count"].(float64); int(cnt) != len(lines)-1 || int(cnt) >= 500 {
		t.Fatalf("budgeted stream count=%v lines=%d", cnt, len(lines))
	}
	if n := poolOutstanding(svc); n != 0 {
		t.Fatalf("%d engines outstanding", n)
	}
}

// TestHTTPTenantHeadersAndQuota: tenant identity and priority flow from the
// X-Tenant / X-Priority headers, and a tenant past its quota gets 429 with
// Retry-After while other tenants keep being served.
func TestHTTPTenantHeadersAndQuota(t *testing.T) {
	srv, svc, _, sets := serverFor(t, Config{MaxConcurrency: 1, TenantInFlight: 1, TenantQueue: 1})

	streamBody, _ := json.Marshal(map[string]any{
		"graph":  "test",
		"p":      map[string]any{"set": sets[0].Name},
		"q":      map[string]any{"set": sets[1].Name},
		"k":      0,
		"stream": true,
	})
	open := func(tenant string) *http.Response {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/join2", bytes.NewReader(streamBody))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// noisy holds the only token through a direct stream handle (an HTTP
	// holder would finish into the socket buffers and release too early);
	// a second noisy request then fills its queue of 1.
	holder, err := svc.OpenJoin2(context.Background(), "test",
		SetRef{Name: sets[0].Name}, SetRef{Name: sets[1].Name}, Query{Tenant: "noisy"})
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Stop()
	if _, ok, err := holder.Next(); !ok || err != nil {
		t.Fatalf("holder first pull: ok=%v err=%v", ok, err)
	}
	queuedDone := make(chan *http.Response, 1)
	go func() { queuedDone <- open("noisy") }()
	waitFor(t, func() bool { _, waiting, _ := svc.adm.snapshot(); return waiting == 1 })

	// The third noisy request breaches the queue cap: 429 + Retry-After.
	rejected := open("noisy")
	raw, _ := io.ReadAll(rejected.Body)
	rejected.Body.Close()
	if rejected.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota tenant = %d: %s", rejected.StatusCode, raw)
	}
	if rejected.Header.Get("Retry-After") == "" {
		t.Fatal("429 lacks Retry-After")
	}
	if svc.Stats().QuotaRejections == 0 {
		t.Fatal("QuotaRejections counter never moved")
	}

	// A different tenant is not rejected: it queues (concurrency is 1), which
	// is exactly the isolation the per-tenant caps exist to provide.
	otherDone := make(chan *http.Response, 1)
	go func() { otherDone <- open("quiet") }()
	waitFor(t, func() bool { _, waiting, _ := svc.adm.snapshot(); return waiting == 2 })

	// Release the holder; the queued requests then get the token and finish.
	holder.Stop()
	for _, ch := range []chan *http.Response{queuedDone, otherDone} {
		select {
		case resp := <-ch:
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("queued request = %d", resp.StatusCode)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		case <-time.After(30 * time.Second):
			t.Fatal("queued request never completed")
		}
	}
	waitFor(t, func() bool { return poolOutstanding(svc) == 0 })

	// Bad priority header is a client error, not a silent default.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/join2", bytes.NewReader(streamBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Priority", "urgent")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus X-Priority = %d, want 400", resp.StatusCode)
	}
}
