package service

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestMetricsEndpoint(t *testing.T) {
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{30, 30}, PIn: 0.2, POut: 0.05, Seed: 2, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{})
	if err := svc.LoadGraph("g", g, sets); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Join2(t.Context(), "g",
		SetRef{Name: sets[0].Name}, SetRef{Name: sets[1].Name}, 3, Query{}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(svc))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != metricsContentType {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		"# TYPE njoind_graphs gauge",
		"njoind_graphs 1",
		"# TYPE njoind_join2_requests_total counter",
		"njoind_join2_requests_total 1",
		"njoind_plan_picks_total{algo=",
		"njoind_draining 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics output lacks %q:\n%s", want, body)
		}
	}
	// No router configured: the cluster family must be absent, not zeroed.
	if strings.Contains(body, "njoind_cluster_") {
		t.Fatalf("cluster metrics rendered without a router:\n%s", body)
	}
}

// TestMetricsClusterCounters renders a stats snapshot with a cluster surface
// attached and checks the scatter counters appear under stable names.
func TestMetricsClusterCounters(t *testing.T) {
	var sb strings.Builder
	WriteMetrics(&sb, Stats{
		Cluster: &RouterStats{ScatterQueries: 4, ShardEarlyStops: 2, Failovers: 1},
	})
	body := sb.String()
	for _, want := range []string{
		"njoind_cluster_scatter_queries_total 4",
		"njoind_cluster_shard_early_stops_total 2",
		"njoind_cluster_failovers_total 1",
		"# TYPE njoind_cluster_shard_streams_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics output lacks %q:\n%s", want, body)
		}
	}
}
