package service

import "errors"

// Typed sentinels for the hardening layer. They live here (rather than in the
// public dhtjoin package) because dhtjoin imports internal/service; dhtjoin
// re-exports aliases of these exact values so errors.Is works across layers.
var (
	// ErrQuotaExceeded reports that a tenant's admission quota rejected the
	// request outright: its waiting queue is full, so queueing would only add
	// latency to work that will be shed anyway. Clients should back off and
	// retry; HTTP maps it to 429 with Retry-After.
	ErrQuotaExceeded = errors.New("service: tenant quota exceeded")

	// ErrBudgetExceeded reports that a query's wall-clock deadline budget
	// expired mid-join. It is the *cause* installed in the query context, so
	// streams distinguish it from a client cancel: budget expiry degrades to
	// a partial-but-correct ranking prefix marked truncated, while a client
	// cancel is just an aborted request.
	ErrBudgetExceeded = errors.New("service: deadline budget exceeded")

	// ErrDraining reports that the service has begun graceful drain and no
	// longer admits new queries; in-flight streams are allowed to finish
	// within the drain budget. HTTP maps it to 503 with Retry-After.
	ErrDraining = errors.New("service: draining, not admitting new queries")
)
