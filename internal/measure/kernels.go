package measure

// This file registers the built-in measures. The walk kernels (dht, reach,
// ppr) evaluate through the internal/dht engines — the same code path the
// join executors run, so the registry's evaluator IS the serving semantics,
// not a parallel implementation. The ppr kernel additionally exposes the
// internal/ppr forward-push evaluator as its certified approximation, and
// the simrank kernel wraps the fixed-point matrix with its iteration-gap
// bound.

import (
	"fmt"
	"math"

	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/ppr"
	"repro/internal/simrank"
)

// walkEvaluator scores through a dht engine — one absorbing/plain forward
// walk per (src, target) pair at the requested depth.
type walkEvaluator struct {
	e    *dht.Engine
	kind dht.Kind
	d    int
}

func (w *walkEvaluator) ScoresInto(src graph.NodeID, targets []graph.NodeID, l int, dst []float64) error {
	if len(dst) != len(targets) {
		return fmt.Errorf("measure: dst has length %d, want %d", len(dst), len(targets))
	}
	if l < 1 || l > w.d {
		return fmt.Errorf("measure: depth %d outside [1,%d]", l, w.d)
	}
	for i, t := range targets {
		dst[i] = w.e.ForwardScoreKind(w.kind, src, t, l)
	}
	return nil
}

// newWalkEvaluator builds the engine-backed evaluator shared by the walk
// kernels.
func newWalkEvaluator(kind dht.Kind) func(g *graph.Graph, p dht.Params, d int) (Evaluator, error) {
	return func(g *graph.Graph, p dht.Params, d int) (Evaluator, error) {
		e, err := dht.NewEngine(g, p, d)
		if err != nil {
			return nil, err
		}
		return &walkEvaluator{e: e, kind: kind, d: d}, nil
	}
}

// pprEvaluator scores through the power-iteration column: one truncated
// series sweep per (src, l), gathered at the targets. It caches the last
// computed column, so the common access pattern — one source row at a time —
// pays one sweep per row.
type pprEvaluator struct {
	g       *graph.Graph
	c       float64
	d       int
	lastSrc graph.NodeID
	lastL   int
	col     []float64
}

func (e *pprEvaluator) ScoresInto(src graph.NodeID, targets []graph.NodeID, l int, dst []float64) error {
	if len(dst) != len(targets) {
		return fmt.Errorf("measure: dst has length %d, want %d", len(dst), len(targets))
	}
	if l < 1 || l > e.d {
		return fmt.Errorf("measure: depth %d outside [1,%d]", l, e.d)
	}
	if e.col == nil || src != e.lastSrc || l != e.lastL {
		col, err := ppr.PowerIteration(e.g, e.c, src, l)
		if err != nil {
			return err
		}
		e.col, e.lastSrc, e.lastL = col, src, l
	}
	for i, t := range targets {
		dst[i] = e.col[t]
	}
	return nil
}

// pushEvaluator is the certified approximate ppr evaluator: one forward
// push per source, scores gathered at the targets, error bounded by the
// push residual. The depth argument is ignored — push approximates the
// untruncated series and its certificate absorbs the tail.
type pushEvaluator struct {
	g   *graph.Graph
	c   float64
	eps float64
}

func (e *pushEvaluator) ScoresInto(src graph.NodeID, targets []graph.NodeID, _ int, dst []float64) error {
	if len(dst) != len(targets) {
		return fmt.Errorf("measure: dst has length %d, want %d", len(dst), len(targets))
	}
	res, err := ppr.ForwardPush(e.g, e.c, src, e.eps)
	if err != nil {
		return err
	}
	for i, t := range targets {
		dst[i] = res.Scores[t]
	}
	return nil
}

// simrankEvaluator scores through the shared fixed-point matrix; depth is
// resolved at matrix construction (the default iteration count), so the
// per-call depth is ignored.
type simrankEvaluator struct {
	m *simrank.Matrix
}

func (e *simrankEvaluator) ScoresInto(src graph.NodeID, targets []graph.NodeID, _ int, dst []float64) error {
	if len(dst) != len(targets) {
		return fmt.Errorf("measure: dst has length %d, want %d", len(dst), len(targets))
	}
	for i, t := range targets {
		dst[i] = e.m.Score(src, t)
	}
	return nil
}

// simrankDefaultC and simrankDefaultIters mirror simrank.Options' resolved
// defaults; the iteration-gap bound C^(l+1) is stated in their terms.
const (
	simrankDefaultC     = 0.8
	simrankDefaultIters = 10
)

func init() {
	Register(Kernel{
		Name:         "dht",
		Contract:     Exact,
		WalkBased:    true,
		Walk:         dht.FirstHit,
		NewEvaluator: newWalkEvaluator(dht.FirstHit),
		Bound:        dht.Params.XBound,
		Doc:          "decayed hitting time (the paper's measure): first-hit walk fold, default DHTλ(0.2)",
	})
	Register(Kernel{
		Name:         "reach",
		Contract:     Exact,
		WalkBased:    true,
		Walk:         dht.Reach,
		NewEvaluator: newWalkEvaluator(dht.Reach),
		Bound:        dht.Params.XBound,
		Doc:          "reach-probability fold of the caller's params (the walk may revisit the target)",
	})
	Register(Kernel{
		Name:          "ppr",
		Contract:      Exact,
		WalkBased:     true,
		Walk:          dht.Reach,
		DefaultParams: func(dht.Params) dht.Params { return dht.PPR(0.5) },
		NewEvaluator: func(g *graph.Graph, p dht.Params, d int) (Evaluator, error) {
			if err := p.Validate(); err != nil {
				return nil, err
			}
			return &pprEvaluator{g: g, c: p.Lambda, d: d}, nil
		},
		NewApprox: func(g *graph.Graph, p dht.Params, eps float64) (Evaluator, float64, error) {
			if err := p.Validate(); err != nil {
				return nil, 0, err
			}
			// The per-query residual varies by source; the registered bound
			// is the worst case Σr ≤ 1 scaled by nothing — callers read the
			// actual certificate from ppr.ForwardPush when they need it
			// tight. Conservatively report eps·|V| (the threshold times the
			// maximum number of positive residuals), capped at 1.
			bound := eps * float64(g.NumNodes())
			if bound > 1 {
				bound = 1
			}
			return &pushEvaluator{g: g, c: p.Lambda, eps: eps}, bound, nil
		},
		Bound: dht.Params.XBound, // with PPR params, α·λ^(l+1)/(1−λ) = c^(l+1)
		Doc:   "personalized PageRank (no self term): reach fold of dht.PPR(c), default c=0.5",
	})
	Register(Kernel{
		Name:        "simrank",
		Contract:    CertifiedEps,
		PlanMeasure: "simrank",
		Eps: func(_ dht.Params, _ int) float64 {
			// Iteration-gap bound of the fixed point: |s_k(a,b) − s(a,b)| ≤
			// C^(k+1) (Jeh & Widom, Prop. 2) at the default iteration count.
			return math.Pow(simrankDefaultC, simrankDefaultIters+1)
		},
		NewEvaluator: func(g *graph.Graph, _ dht.Params, _ int) (Evaluator, error) {
			m, err := simrank.SharedMatrix(g)
			if err != nil {
				return nil, err
			}
			return &simrankEvaluator{m: m}, nil
		},
		Bound: func(_ dht.Params, l int) float64 {
			// Same iteration-gap series: the score mass iterations past l
			// can still add is at most C^(l+1), monotone decreasing.
			return math.Pow(simrankDefaultC, float64(l+1))
		},
		Doc: "SimRank fixed point (C=0.8, 10 iters, dense ≤4096 nodes); ε = C^(iters+1)",
	})
}
