package measure_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/measure"
	"repro/internal/ppr"
	"repro/internal/simrank"
)

// testGraph builds a modest directed community graph every kernel can
// evaluate (well under the SimRank dense cap).
func testGraph(t *testing.T, seed int64) *graph.Graph {
	t.Helper()
	g, _, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes:      []int{40, 40},
		PIn:        0.12,
		POut:       0.02,
		Directed:   true,
		MaxWeight:  3,
		Seed:       seed,
		MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLookupDefaultsToDHT(t *testing.T) {
	kern, err := measure.Lookup("")
	if err != nil {
		t.Fatal(err)
	}
	if kern.Name != "dht" {
		t.Fatalf("Lookup(\"\") resolved %q, want dht", kern.Name)
	}
	for _, name := range []string{"dht", "reach", "ppr", "simrank"} {
		if _, err := measure.Lookup(name); err != nil {
			t.Fatalf("Lookup(%q): %v", name, err)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	_, err := measure.Lookup("katz")
	if !errors.Is(err, measure.ErrUnknownMeasure) {
		t.Fatalf("unknown measure error %v is not ErrUnknownMeasure", err)
	}
	// The message must teach the valid spellings.
	for _, name := range measure.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list registered measure %q", err, name)
		}
	}
}

// TestWalkEvaluatorsMatchEngine pins the walk kernels to the exact engine
// fold the join executors run: same float64, bit for bit.
func TestWalkEvaluatorsMatchEngine(t *testing.T) {
	g := testGraph(t, 7)
	p := dht.DHTLambda(0.2)
	const d = 6
	e, err := dht.NewEngine(g, p, d)
	if err != nil {
		t.Fatal(err)
	}
	targets := []graph.NodeID{0, 3, 17, 42, 79}
	dst := make([]float64, len(targets))
	for _, tc := range []struct {
		name string
		kind dht.Kind
	}{{"dht", dht.FirstHit}, {"reach", dht.Reach}} {
		kern, err := measure.Lookup(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := kern.NewEvaluator(g, p, d)
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range []graph.NodeID{1, 25, 60} {
			for l := 1; l <= d; l++ {
				if err := ev.ScoresInto(src, targets, l, dst); err != nil {
					t.Fatal(err)
				}
				for i, tgt := range targets {
					want := e.ForwardScoreKind(tc.kind, src, tgt, l)
					if dst[i] != want {
						t.Fatalf("%s (%d,%d)@%d = %v, engine says %v", tc.name, src, tgt, l, dst[i], want)
					}
				}
			}
		}
	}
}

// TestPPREvaluator pins the ppr kernel three ways: against the power
// iteration it wraps, against the reach walk under PPR params (the identity
// the join executors rely on), and its default parameterization.
func TestPPREvaluator(t *testing.T) {
	g := testGraph(t, 11)
	kern, err := measure.Lookup("ppr")
	if err != nil {
		t.Fatal(err)
	}
	p := kern.ResolveParams(dht.Params{})
	if p != dht.PPR(0.5) {
		t.Fatalf("ppr default params = %+v, want dht.PPR(0.5)", p)
	}
	const d = 8
	ev, err := kern.NewEvaluator(g, p, d)
	if err != nil {
		t.Fatal(err)
	}
	e, err := dht.NewEngine(g, p, d)
	if err != nil {
		t.Fatal(err)
	}
	targets := make([]graph.NodeID, g.NumNodes())
	for i := range targets {
		targets[i] = graph.NodeID(i)
	}
	dst := make([]float64, len(targets))
	for _, src := range []graph.NodeID{2, 33} {
		col, err := ppr.PowerIteration(g, 0.5, src, d)
		if err != nil {
			t.Fatal(err)
		}
		if err := ev.ScoresInto(src, targets, d, dst); err != nil {
			t.Fatal(err)
		}
		for v := range dst {
			if dst[v] != col[v] {
				t.Fatalf("evaluator(%d,%d) = %v, power iteration says %v", src, v, dst[v], col[v])
			}
			walk := e.ForwardScoreKind(dht.Reach, src, graph.NodeID(v), d)
			if math.Abs(dst[v]-walk) > 1e-12 {
				t.Fatalf("evaluator(%d,%d) = %v, reach walk says %v", src, v, dst[v], walk)
			}
		}
	}
}

// TestPPRApproxCertificate checks the certified push evaluator: every score
// underestimates the untruncated value by at most the reported bound.
func TestPPRApproxCertificate(t *testing.T) {
	g := testGraph(t, 13)
	kern, err := measure.Lookup("ppr")
	if err != nil {
		t.Fatal(err)
	}
	if kern.NewApprox == nil {
		t.Fatal("ppr kernel has no certified approximation")
	}
	p := kern.ResolveParams(dht.Params{})
	const eps = 1e-4
	ev, bound, err := kern.NewApprox(g, p, eps)
	if err != nil {
		t.Fatal(err)
	}
	if bound <= 0 || bound > 1 {
		t.Fatalf("certified bound %v outside (0,1]", bound)
	}
	targets := make([]graph.NodeID, g.NumNodes())
	for i := range targets {
		targets[i] = graph.NodeID(i)
	}
	approx := make([]float64, len(targets))
	if err := ev.ScoresInto(5, targets, 0, approx); err != nil {
		t.Fatal(err)
	}
	// Depth 60 truncates far below the push certificate's resolution, so it
	// stands in for the untruncated series.
	exact, err := ppr.PowerIteration(g, 0.5, 5, 60)
	if err != nil {
		t.Fatal(err)
	}
	for v := range approx {
		diff := exact[v] - approx[v]
		if diff < -1e-12 || diff > bound+1e-12 {
			t.Fatalf("push score %d off by %v, certified bound %v", v, diff, bound)
		}
	}
}

func TestSimRankEvaluatorMatchesMatrix(t *testing.T) {
	g := testGraph(t, 17)
	kern, err := measure.Lookup("simrank")
	if err != nil {
		t.Fatal(err)
	}
	if kern.Contract != measure.CertifiedEps {
		t.Fatalf("simrank contract = %v, want certified-eps", kern.Contract)
	}
	if kern.Eps == nil || kern.Eps(dht.Params{}, 0) <= 0 {
		t.Fatal("simrank kernel must declare a positive ε")
	}
	ev, err := kern.NewEvaluator(g, dht.Params{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := simrank.Compute(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	targets := []graph.NodeID{0, 1, 9, 40, 79}
	dst := make([]float64, len(targets))
	if err := ev.ScoresInto(9, targets, 0, dst); err != nil {
		t.Fatal(err)
	}
	for i, tgt := range targets {
		if want := m.Score(9, tgt); dst[i] != want {
			t.Fatalf("simrank evaluator (9,%d) = %v, matrix says %v", tgt, dst[i], want)
		}
	}
	if dst[2] != 1 {
		t.Fatalf("s(9,9) = %v, want 1", dst[2])
	}
}

// TestBoundsMonotone enforces the one analytic property the rank-join stack
// requires of every kernel: Bound(p, l) is non-negative and non-increasing
// in l.
func TestBoundsMonotone(t *testing.T) {
	for _, kern := range measure.Kernels() {
		p := kern.ResolveParams(dht.Params{})
		if p == (dht.Params{}) {
			p = dht.DHTLambda(0.2)
		}
		prev := math.Inf(1)
		for l := 0; l <= 20; l++ {
			b := kern.Bound(p, l)
			if b < 0 {
				t.Fatalf("%s: Bound(%d) = %v < 0", kern.Name, l, b)
			}
			if b > prev {
				t.Fatalf("%s: Bound(%d) = %v > Bound(%d) = %v (not monotone)", kern.Name, l, b, l-1, prev)
			}
			prev = b
		}
		if first := kern.Bound(p, 0); prev >= first && first > 0 {
			t.Fatalf("%s: bound never decays over 20 levels (%v → %v)", kern.Name, first, prev)
		}
	}
}

func TestResolveParamsCallerWins(t *testing.T) {
	kern, err := measure.Lookup("ppr")
	if err != nil {
		t.Fatal(err)
	}
	custom := dht.PPR(0.85)
	if got := kern.ResolveParams(custom); got != custom {
		t.Fatalf("caller params overridden: %+v", got)
	}
	dhtKern, err := measure.Lookup("dht")
	if err != nil {
		t.Fatal(err)
	}
	if got := dhtKern.ResolveParams(dht.Params{}); got != (dht.Params{}) {
		t.Fatalf("dht kernel must leave zero params for the facade default, got %+v", got)
	}
}

func TestDescribe(t *testing.T) {
	infos := measure.Describe()
	if len(infos) < 4 {
		t.Fatalf("Describe returned %d kernels, want at least 4", len(infos))
	}
	byName := map[string]measure.Info{}
	for i, info := range infos {
		if i > 0 && infos[i-1].Name >= info.Name {
			t.Fatalf("Describe not sorted at %d: %q before %q", i, infos[i-1].Name, info.Name)
		}
		if info.Doc == "" {
			t.Fatalf("%s has no doc line", info.Name)
		}
		byName[info.Name] = info
	}
	if f := byName["ppr"].Family; f != "walk" {
		t.Fatalf("ppr family = %q, want walk", f)
	}
	if f := byName["simrank"].Family; f != "matrix" {
		t.Fatalf("simrank family = %q, want matrix", f)
	}
	if w := byName["ppr"].Walk; w != dht.Reach.String() {
		t.Fatalf("ppr walk = %q, want %q", w, dht.Reach)
	}
}

// TestEvaluatorDepthValidation: walk evaluators reject depths outside the
// engine's [1, d] window instead of silently clamping.
func TestEvaluatorDepthValidation(t *testing.T) {
	g := testGraph(t, 19)
	kern, err := measure.Lookup("dht")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := kern.NewEvaluator(g, dht.DHTLambda(0.2), 4)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 1)
	if err := ev.ScoresInto(0, []graph.NodeID{1}, 5, dst); err == nil {
		t.Fatal("depth past d accepted")
	}
	if err := ev.ScoresInto(0, []graph.NodeID{1}, 0, dst); err == nil {
		t.Fatal("depth 0 accepted")
	}
	if err := ev.ScoresInto(0, []graph.NodeID{1, 2}, 2, dst); err == nil {
		t.Fatal("mismatched dst length accepted")
	}
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, k measure.Kernel) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Register did not panic", name)
			}
		}()
		measure.Register(k)
	}
	ev := func(*graph.Graph, dht.Params, int) (measure.Evaluator, error) { return nil, nil }
	bound := func(dht.Params, int) float64 { return 0 }
	mustPanic("empty name", measure.Kernel{NewEvaluator: ev, Bound: bound})
	mustPanic("duplicate", measure.Kernel{Name: "dht", NewEvaluator: ev, Bound: bound})
	mustPanic("no evaluator", measure.Kernel{Name: "m-test-1", Bound: bound})
	mustPanic("no bound", measure.Kernel{Name: "m-test-2", NewEvaluator: ev})
	mustPanic("certified without eps", measure.Kernel{
		Name: "m-test-3", Contract: measure.CertifiedEps, NewEvaluator: ev, Bound: bound,
	})
}
