// Package measure is the proximity-measure registry: the generalization
// that turns "one paper's operator" into a graph-proximity query engine. A
// measure is a named kernel — a score-column evaluator, a monotone rank-join
// bound function, and a declared accuracy contract — mirroring the
// plan.Descriptor idiom for executors. The execution layers resolve a
// measure name once (dhtjoin.Query.WithMeasure, the service's "measure"
// wire option, njoin's -measure flag) and thread the kernel's walk kind,
// default parameters, and planner measure key through the existing planner
// and executor machinery.
//
// Registered measures come in two families:
//
//   - Walk-based (dht, reach, ppr): scores are folds over step
//     probabilities of the truncated random walk, computed by the
//     internal/dht engines. They share every registered walk executor —
//     selecting among them changes the Kind and Params threaded into the
//     engines, never the executor set — which is why "dht" through the
//     registry is bit-identical to the pre-registry direct path.
//   - Matrix-based (simrank): scores come from a fixed-point iteration the
//     walk form cannot express. These declare their own planner measure key
//     and bring their own executors (SR-SCAN, SR-AP).
//
// The rank-join machinery requires exactly one analytic property of a
// measure: Bound(p, l) must be a monotone non-increasing upper bound on the
// score mass any pair can still gain past depth l. Every corner-bound early
// stop and certified-ε band in the join stack is sound for any kernel
// satisfying it.
//
// Import shape: measure sits above the measure implementations (dht, ppr,
// simrank) and below the execution facades (dhtjoin, internal/service).
// The operator packages (join2, core) do NOT import it — they stay keyed on
// the small dht.Kind + Params config they always had, which is what keeps
// the walk hot paths untouched.
package measure

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/dht"
	"repro/internal/graph"
)

// Contract declares how a kernel's scores relate to the measure's exact
// value.
type Contract int

const (
	// Exact kernels compute the measure's defining truncated value with
	// float64 reference arithmetic — the same numbers the equivalence
	// suites pin bit-identically.
	Exact Contract = iota
	// CertifiedEps kernels compute an approximation with a stated uniform
	// error bound (Kernel.Eps): every score is within ε of the exact value,
	// and rankings are certified only up to score gaps larger than 2ε.
	CertifiedEps
)

// String names the contract.
func (c Contract) String() string {
	if c == CertifiedEps {
		return "certified-eps"
	}
	return "exact"
}

// MarshalJSON renders the contract as its string form.
func (c Contract) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%q", c.String())), nil
}

// ErrUnknownMeasure reports a measure name no package registered; callers
// branch with errors.Is (njoind maps it to HTTP 400).
var ErrUnknownMeasure = errors.New("measure: unknown measure")

// Evaluator computes one measure's score columns. Implementations are not
// required to be safe for concurrent use; callers own one evaluator per
// goroutine (the engine-pool discipline the walk joiners already follow).
type Evaluator interface {
	// ScoresInto fills dst[i] with the measure score from src to
	// targets[i], evaluated at depth l (walk measures truncate the series
	// at l; fixed-point measures resolve depth at construction and ignore
	// it). dst must have len(targets).
	ScoresInto(src graph.NodeID, targets []graph.NodeID, l int, dst []float64) error
}

// Kernel is one registered proximity measure.
type Kernel struct {
	// Name is the wire/flag spelling ("dht", "reach", "ppr", "simrank").
	Name string

	// Contract declares the accuracy contract of the kernel's evaluator.
	Contract Contract

	// Eps, for CertifiedEps kernels, returns the certified uniform error
	// bound of the evaluator at depth d. Nil for Exact kernels.
	Eps func(p dht.Params, d int) float64

	// WalkBased marks the walk family: scores fold step probabilities of
	// the truncated walk, so the measure executes on the shared walk
	// executors with Walk and (defaulted) Params threaded into the engines.
	WalkBased bool

	// Walk is the step-probability kind walk-based kernels fold
	// (dht.FirstHit or dht.Reach). Meaningless when !WalkBased.
	Walk dht.Kind

	// PlanMeasure is the planner's Workload/Descriptor measure key for this
	// kernel: empty for the walk family (they share the walk executors),
	// the measure name for kernels with dedicated executors.
	PlanMeasure string

	// DefaultParams resolves zero-value caller params to the measure's
	// customary parameterization (e.g. ppr → dht.PPR(0.5)). Non-zero caller
	// params always win. Nil means the caller's resolution applies
	// unchanged (the dht default, DHTλ(0.2), lives in the facades).
	DefaultParams func(p dht.Params) dht.Params

	// NewEvaluator builds the kernel's score-column evaluator for a graph
	// at parameters p and depth d.
	NewEvaluator func(g *graph.Graph, p dht.Params, d int) (Evaluator, error)

	// NewApprox, when non-nil, builds the kernel's certified approximate
	// evaluator (e.g. ppr forward push at residual threshold eps),
	// returning the evaluator and its certified uniform error bound.
	NewApprox func(g *graph.Graph, p dht.Params, eps float64) (Evaluator, float64, error)

	// Bound returns an upper bound on the score mass any pair can still
	// gain past depth l. It MUST be monotone non-increasing in l — the
	// rank-join corner bounds and the iterative deepeners' pruning are
	// sound only under that property (it is what lets a prefix of the walk
	// certify a final ranking).
	Bound func(p dht.Params, l int) float64

	// Doc is the one-line description GET /measures serves.
	Doc string
}

// registry holds the kernels by name; registration happens in this
// package's init (and tests'), mirroring the plan registry idiom.
var registry = struct {
	sync.RWMutex
	byName map[string]Kernel
}{byName: make(map[string]Kernel)}

// Register publishes a measure kernel. It panics on an empty or duplicate
// name or missing evaluator/bound — registration is init-time wiring, and a
// broken registry should fail the process, not a query.
func Register(k Kernel) {
	if k.Name == "" {
		panic("measure: Register with empty measure name")
	}
	if k.NewEvaluator == nil {
		panic(fmt.Sprintf("measure: %q registered without an evaluator", k.Name))
	}
	if k.Bound == nil {
		panic(fmt.Sprintf("measure: %q registered without a bound function", k.Name))
	}
	if k.Contract == CertifiedEps && k.Eps == nil {
		panic(fmt.Sprintf("measure: %q declares certified-eps without an Eps function", k.Name))
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[k.Name]; dup {
		panic(fmt.Sprintf("measure: %q registered twice", k.Name))
	}
	registry.byName[k.Name] = k
}

// Lookup resolves a measure by name; the empty name selects "dht", the
// paper's measure and the system-wide default. Unknown names return an
// ErrUnknownMeasure-wrapped error listing the registered spellings.
func Lookup(name string) (Kernel, error) {
	if name == "" {
		name = "dht"
	}
	registry.RLock()
	k, ok := registry.byName[name]
	registry.RUnlock()
	if !ok {
		return Kernel{}, fmt.Errorf("%w: %q (registered: %v)", ErrUnknownMeasure, name, Names())
	}
	return k, nil
}

// Names lists the registered measure names, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.byName))
	for n := range registry.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Kernels lists the registered kernels sorted by name.
func Kernels() []Kernel {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]Kernel, 0, len(registry.byName))
	for _, k := range registry.byName {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Info is the wire form of one registered kernel (GET /measures).
type Info struct {
	Name     string   `json:"name"`
	Contract Contract `json:"contract"`
	Family   string   `json:"family"` // "walk" or "matrix"
	Walk     string   `json:"walk,omitempty"`
	Doc      string   `json:"doc"`
}

// Describe returns the registered kernels in wire form, sorted by name.
func Describe() []Info {
	ks := Kernels()
	out := make([]Info, len(ks))
	for i, k := range ks {
		info := Info{Name: k.Name, Contract: k.Contract, Family: "matrix", Doc: k.Doc}
		if k.WalkBased {
			info.Family = "walk"
			info.Walk = k.Walk.String()
		}
		out[i] = info
	}
	return out
}

// ResolveParams applies the kernel's default parameterization to
// caller-supplied params: zero-value params take the kernel default (when
// the kernel declares one), anything else is returned unchanged.
func (k Kernel) ResolveParams(p dht.Params) dht.Params {
	if k.DefaultParams != nil && p == (dht.Params{}) {
		return k.DefaultParams(p)
	}
	return p
}
