// Package cluster is njoind's shard-and-scatter layer: a Kademlia-style
// consistent-hash ring places each graph partition on an owner node (and
// replicates it to K peers), a thin envelope RPC ships store segments and
// carries shard-side join streams, and a coordinator merges the per-shard
// rank-ordered streams into a global top-k through the rank-join corner
// bound — a shard stops being pulled the moment its next-possible score
// falls below the global k-th.
//
// The design follows the D7024E Kademlia reference: 160-bit ids compared by
// XOR distance, replicate-to-K-closest, α-parallel fan-out, MsgID/inflight
// correlation with a single read loop per connection, per-RPC timeouts, and
// no network calls under locks.
package cluster

import (
	"bytes"
	"crypto/sha1"
	"encoding/hex"
	"sort"
	"sync"
)

// ID is a 160-bit Kademlia-style identifier. Nodes and placement keys hash
// onto the same space; distance is XOR, compared as a big-endian integer.
type ID [20]byte

// MakeID hashes an arbitrary string (a node name, a placement key) onto the
// id space.
func MakeID(s string) ID { return sha1.Sum([]byte(s)) }

// String renders the id's leading bytes for logs.
func (id ID) String() string { return hex.EncodeToString(id[:4]) }

// xorCloser reports whether a is strictly closer to target than b under XOR
// distance (big-endian comparison, per the Kademlia metric).
func xorCloser(a, b, target ID) bool {
	for i := range target {
		da, db := a[i]^target[i], b[i]^target[i]
		if da != db {
			return da < db
		}
	}
	return false
}

// Member is one ring participant: a stable name (which determines its id)
// and the address peers reach it at — the *advertised* address, which may
// differ from the bind address behind NAT or containers.
type Member struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
}

// id returns the member's position on the ring.
func (m Member) id() ID { return MakeID(m.Name) }

// Ring is the membership view: a set of members addressable by XOR
// closeness to a key. All methods are safe for concurrent use. Membership
// here is static-plus-gossip (flags seed it, PING upserts senders); there is
// no failure detector — liveness is handled per-RPC by the coordinator's
// replica failover.
type Ring struct {
	mu      sync.RWMutex
	members map[string]Member // by name
}

// NewRing returns an empty ring.
func NewRing() *Ring {
	return &Ring{members: make(map[string]Member)}
}

// Upsert adds or updates a member. Same-name upserts replace the address
// (a node restarting behind a new advertise address keeps its ring
// position, which is a pure function of the name).
func (r *Ring) Upsert(m Member) {
	if m.Name == "" {
		return
	}
	r.mu.Lock()
	r.members[m.Name] = m
	r.mu.Unlock()
}

// Remove drops a member by name.
func (r *Ring) Remove(name string) {
	r.mu.Lock()
	delete(r.members, name)
	r.mu.Unlock()
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Members lists the membership sorted by name.
func (r *Ring) Members() []Member {
	r.mu.RLock()
	out := make([]Member, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, m)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the member registered under name.
func (r *Ring) Lookup(name string) (Member, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.members[name]
	return m, ok
}

// Owners returns the k members closest to key by XOR distance, closest
// first — the key's owner and its K−1 replicas. Fewer than k members
// returns them all. The result is deterministic for a given membership:
// equal distances are impossible (ids are distinct by construction), so the
// ordering is total and every node computes the same owner list.
func (r *Ring) Owners(key string, k int) []Member {
	target := MakeID(key)
	r.mu.RLock()
	all := make([]Member, 0, len(r.members))
	for _, m := range r.members {
		all = append(all, m)
	}
	r.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].id(), all[j].id()
		if bytes.Equal(a[:], b[:]) {
			return all[i].Name < all[j].Name // unreachable for distinct names; total order regardless
		}
		return xorCloser(a, b, target)
	})
	if k > len(all) {
		k = len(all)
	}
	if k < 0 {
		k = 0
	}
	return all[:k]
}
