package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// WrapHandler adds the cluster operator surface in front of the service's
// HTTP API:
//
//	GET  /cluster        membership, placements, and scatter counters
//	POST /cluster/place  ?graph=name[&parts=N][&replicas=K] — shard a loaded
//	                     graph across the ring (parts defaults to the ring
//	                     size, replicas to the node default)
//
// Everything else falls through to the wrapped handler.
func WrapHandler(n *Node, inner http.Handler) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /cluster", func(w http.ResponseWriter, r *http.Request) {
		writeClusterJSON(w, http.StatusOK, map[string]any{
			"self":       n.Self(),
			"members":    n.ring.Members(),
			"placements": n.Placements(),
			"stats":      n.RouterStats(),
		})
	})

	mux.HandleFunc("POST /cluster/place", func(w http.ResponseWriter, r *http.Request) {
		graphName := r.URL.Query().Get("graph")
		if graphName == "" {
			clusterError(w, http.StatusBadRequest, fmt.Errorf("place wants ?graph=name"))
			return
		}
		parts, err := intParam(r, "parts")
		if err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		replicas, err := intParam(r, "replicas")
		if err != nil {
			clusterError(w, http.StatusBadRequest, err)
			return
		}
		if err := n.PlaceGraph(r.Context(), graphName, parts, replicas); err != nil {
			clusterError(w, http.StatusBadGateway, err)
			return
		}
		pl, _ := n.placementOf(graphName)
		writeClusterJSON(w, http.StatusOK, map[string]any{
			"graph": graphName, "parts": pl.Parts, "replicas": pl.Replicas, "nodes": pl.Nodes,
		})
	})

	mux.Handle("/", inner)
	return mux
}

// intParam parses an optional non-negative integer query parameter; absent
// returns 0 (meaning "use the default").
func intParam(r *http.Request, name string) (int, error) {
	s := r.URL.Query().Get(name)
	if s == "" {
		return 0, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad %s=%q: want a non-negative integer", name, s)
	}
	return v, nil
}

// writeClusterJSON and clusterError mirror the service handler's response
// shapes ({"error": {"status", "message"}}) without importing its
// unexported helpers.
func writeClusterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func clusterError(w http.ResponseWriter, status int, err error) {
	writeClusterJSON(w, status, map[string]any{
		"error": map[string]any{"status": status, "message": err.Error()},
	})
}
