package cluster

import (
	"context"
	"fmt"
	"math"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/join2"
	"repro/internal/service"
)

// The suite runs a real 3-node cluster in-process: three services, three RPC
// listeners on loopback, scatter streams over actual TCP. The system
// invariant under test is bit-identity — a cluster query must reproduce the
// single-node ranking exactly (same pairs, same float64 bits, same order) —
// plus the operational properties: corner-bound early stops and replica
// failover when a node dies mid-scatter.

type testNode struct {
	node *Node
	svc  *service.Service
}

func startTestCluster(t *testing.T, n, replicas int) []testNode {
	t.Helper()
	nodes := make([]testNode, n)
	for i := range nodes {
		svc := service.New(service.Config{MaxConcurrency: 16})
		nd, err := Start(Config{
			Name:     fmt.Sprintf("node-%d", i),
			Bind:     "127.0.0.1:0",
			Replicas: replicas,
			Service:  svc,
		})
		if err != nil {
			t.Fatalf("starting node %d: %v", i, err)
		}
		t.Cleanup(nd.Close)
		svc.SetRouter(nd)
		nodes[i] = testNode{node: nd, svc: svc}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	addrs := make([]string, n)
	for i, tn := range nodes {
		addrs[i] = tn.node.Self().Addr
	}
	for _, tn := range nodes {
		if err := tn.node.Join(ctx, addrs); err != nil {
			t.Fatalf("join: %v", err)
		}
	}
	for i, tn := range nodes {
		if got := tn.node.Ring().Len(); got != n {
			t.Fatalf("node %d sees %d members, want %d", i, got, n)
		}
	}
	return nodes
}

// shape is one generated workload: a graph plus its P and Q sets.
type shape struct {
	name string
	gen  func(seed int64) (*graph.Graph, []graph.NodeID, []graph.NodeID)
}

func shapes(t *testing.T) []shape {
	t.Helper()
	return []shape{
		{"community", func(seed int64) (*graph.Graph, []graph.NodeID, []graph.NodeID) {
			g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
				Sizes: []int{120, 120, 120}, PIn: 0.05, POut: 0.01, Seed: seed, MinOutLink: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			return g, sets[0].Nodes()[:40], sets[1].Nodes()[:40]
		}},
		{"skewed", func(seed int64) (*graph.Graph, []graph.NodeID, []graph.NodeID) {
			// One dense community, one sparse: scores concentrate inside the
			// dense block, so most shards' streams fall under the corner
			// bound almost immediately.
			g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
				Sizes: []int{80, 200}, PIn: 0.15, POut: 0.004, Seed: seed, MinOutLink: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			p := append([]graph.NodeID{}, sets[0].Nodes()[:30]...)
			p = append(p, sets[1].Nodes()[:30]...)
			return g, p, sets[0].Nodes()[30:60]
		}},
		{"preferential", func(seed int64) (*graph.Graph, []graph.NodeID, []graph.NodeID) {
			g, err := graph.GeneratePreferential(300, 3, seed)
			if err != nil {
				t.Fatal(err)
			}
			p := make([]graph.NodeID, 50)
			q := make([]graph.NodeID, 50)
			for i := range p {
				p[i] = graph.NodeID(i)
				q[i] = graph.NodeID(100 + 2*i)
			}
			return g, p, q
		}},
	}
}

// loadAndPlace registers the graph on the coordinator and shards it.
func loadAndPlace(t *testing.T, nodes []testNode, name string, g *graph.Graph, parts, replicas int) {
	t.Helper()
	if err := nodes[0].svc.LoadGraph(name, g, nil); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := nodes[0].node.PlaceGraph(ctx, name, parts, replicas); err != nil {
		t.Fatalf("placing %s: %v", name, err)
	}
}

func sameRanking(t *testing.T, label string, want, got []join2.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Pair != g.Pair || math.Float64bits(w.Score) != math.Float64bits(g.Score) {
			t.Fatalf("%s: rank %d differs: cluster (%d,%d)=%x vs local (%d,%d)=%x",
				label, i, g.Pair.P, g.Pair.Q, math.Float64bits(g.Score),
				w.Pair.P, w.Pair.Q, math.Float64bits(w.Score))
		}
	}
}

// TestClusterBitIdenticalRankings is the acceptance property: across graph
// shapes, seeds, and k, a 3-node scatter returns exactly the single-node
// ranking.
func TestClusterBitIdenticalRankings(t *testing.T) {
	nodes := startTestCluster(t, 3, 2)
	baseline := service.New(service.Config{MaxConcurrency: 16})
	ctx := context.Background()
	for _, sh := range shapes(t) {
		for _, seed := range []int64{1, 7} {
			name := fmt.Sprintf("g-%s-%d", sh.name, seed)
			g, p, q := sh.gen(seed)
			loadAndPlace(t, nodes, name, g, 3, 2)
			if err := baseline.LoadGraph(name, g, nil); err != nil {
				t.Fatal(err)
			}
			pref := service.SetRef{IDs: p}
			qref := service.SetRef{IDs: q}
			for _, k := range []int{1, 10, 57} {
				label := fmt.Sprintf("%s k=%d", name, k)
				want, err := baseline.Join2(ctx, name, pref, qref, k, service.Query{})
				if err != nil {
					t.Fatalf("%s: local: %v", label, err)
				}
				got, err := nodes[0].svc.Join2(ctx, name, pref, qref, k, service.Query{})
				if err != nil {
					t.Fatalf("%s: cluster: %v", label, err)
				}
				sameRanking(t, label, want, got)
			}
		}
	}
	rs := nodes[0].node.RouterStats()
	if rs.ScatterQueries == 0 {
		t.Fatal("no query was actually scattered — the property test ran against the local path")
	}
}

// TestClusterEarlyStop pins the corner bound's operational effect: on a
// skewed workload with a small k, at least one shard stream is halted before
// it drains.
func TestClusterEarlyStop(t *testing.T) {
	nodes := startTestCluster(t, 3, 2)
	sh := shapes(t)[1] // skewed
	g, p, q := sh.gen(3)
	// Placement is deterministic in (node names, graph name): "zipf" is a
	// name whose parts land on a peer, so the query actually scatters.
	loadAndPlace(t, nodes, "zipf", g, 3, 2)
	res, err := nodes[0].svc.Join2(context.Background(), "zipf",
		service.SetRef{IDs: p}, service.SetRef{IDs: q}, 5, service.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d results, want 5", len(res))
	}
	rs := nodes[0].node.RouterStats()
	if rs.ScatterQueries == 0 {
		t.Fatal("query did not scatter")
	}
	if rs.ShardEarlyStops < 1 {
		t.Fatalf("no shard stream was early-stopped (streams=%d early_stops=%d)",
			rs.ShardStreams, rs.ShardEarlyStops)
	}
}

// TestClusterFailover kills a shard's primary replica mid-scatter and
// requires the drained ranking to still be bit-identical: the coordinator
// fails over to the surviving replica, which resumes at the consumed cursor.
func TestClusterFailover(t *testing.T) {
	nodes := startTestCluster(t, 3, 2)
	g, _, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{100, 100, 100}, PIn: 0.06, POut: 0.01, Seed: 11, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// P covers every node so no part is empty; modest Q bounds the runtime.
	p := make([]graph.NodeID, g.NumNodes())
	for i := range p {
		p[i] = graph.NodeID(i)
	}
	q := make([]graph.NodeID, 30)
	for i := range q {
		q[i] = graph.NodeID(10 * i)
	}
	const parts = 3
	loadAndPlace(t, nodes, "fg", g, parts, 2)

	// Find a part served remotely (owners exclude the coordinator) and kill
	// its primary replica mid-stream. With 3 nodes and K=2 such a part may
	// not exist for every ring layout; more parts would only lower the odds
	// of that, but guard anyway.
	victim := -1
	for i := 0; i < parts; i++ {
		owners := nodes[0].node.Ring().Owners(partKey("fg", i), 2)
		if !hasMemberName(owners, nodes[0].node.Self().Name) {
			for j := range nodes {
				if nodes[j].node.Self().Name == owners[0].Name {
					victim = j
				}
			}
			break
		}
	}
	if victim < 0 {
		t.Skip("ring layout placed every part on the coordinator; no remote primary to kill")
	}

	baseline := service.New(service.Config{MaxConcurrency: 16})
	if err := baseline.LoadGraph("fg", g, nil); err != nil {
		t.Fatal(err)
	}
	const k = 200
	pref, qref := service.SetRef{IDs: p}, service.SetRef{IDs: q}
	want, err := baseline.Join2(context.Background(), "fg", pref, qref, k, service.Query{})
	if err != nil {
		t.Fatal(err)
	}

	st, err := nodes[0].svc.OpenJoin2(context.Background(), "fg", pref, qref, service.Query{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Stop()
	got, err := st.NextK(10)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the remote primary mid-scatter: its connections drop, its
	// listener closes, its in-flight shard streams die.
	nodes[victim].node.Close()
	rest, err := st.NextK(k - len(got))
	if err != nil {
		t.Fatalf("draining after kill: %v", err)
	}
	got = append(got, rest...)
	sameRanking(t, "failover", want, got)
	if rs := nodes[0].node.RouterStats(); rs.Failovers < 1 {
		t.Fatalf("ranking survived but no failover was recorded (streams=%d)", rs.ShardStreams)
	}
}

// TestClusterDrainFailover pins the replica-local refusal path: a shard
// whose primary replica is draining must fail over to the secondary (the
// drain rejection is a fact about that node, not the query) and still
// produce the bit-identical ranking.
func TestClusterDrainFailover(t *testing.T) {
	nodes := startTestCluster(t, 3, 2)
	sh := shapes(t)[1] // skewed
	g, p, q := sh.gen(3)
	// "zipf" places a part on [node-1, node-2] for this ring (see
	// TestClusterEarlyStop); draining node-1 forces the coordinator down
	// the owner list at stream-open time.
	loadAndPlace(t, nodes, "zipf", g, 3, 2)

	baseline := service.New(service.Config{MaxConcurrency: 16})
	if err := baseline.LoadGraph("zipf", g, nil); err != nil {
		t.Fatal(err)
	}
	pref, qref := service.SetRef{IDs: p}, service.SetRef{IDs: q}
	want, err := baseline.Join2(context.Background(), "zipf", pref, qref, 20, service.Query{})
	if err != nil {
		t.Fatal(err)
	}

	nodes[1].svc.StartDrain()
	got, err := nodes[0].svc.Join2(context.Background(), "zipf", pref, qref, 20, service.Query{})
	if err != nil {
		t.Fatalf("join with draining replica: %v", err)
	}
	sameRanking(t, "drain failover", want, got)
	rs := nodes[0].node.RouterStats()
	if rs.ScatterQueries == 0 {
		t.Fatal("query did not scatter")
	}
	if rs.Failovers < 1 {
		t.Fatalf("draining primary was not failed over (streams=%d)", rs.ShardStreams)
	}
}

// TestPlacementShipsSegments pins the shipping path: placing a graph
// registers it (with its sets) on peer services, via the store's segment
// format.
func TestPlacementShipsSegments(t *testing.T) {
	nodes := startTestCluster(t, 3, 3) // K = ring size: every node owns every part
	g, sets, err := graph.GenerateCommunity(graph.CommunityConfig{
		Sizes: []int{50, 50}, PIn: 0.1, POut: 0.02, Seed: 5, MinOutLink: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := nodes[0].svc.LoadGraph("shipped", g, sets); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := nodes[0].node.PlaceGraph(ctx, "shipped", 3, 3); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		infos := nodes[i].svc.Graphs()
		found := false
		for _, info := range infos {
			if info.Name == "shipped" {
				found = true
				if info.Nodes != g.NumNodes() || info.Edges != g.NumEdges() {
					t.Fatalf("node %d: shipped graph is %d/%d, want %d/%d",
						i, info.Nodes, info.Edges, g.NumNodes(), g.NumEdges())
				}
				if len(info.Sets) != len(sets) {
					t.Fatalf("node %d: %d sets survived shipping, want %d", i, len(info.Sets), len(sets))
				}
			}
		}
		if !found {
			t.Fatalf("node %d never received the placed graph", i)
		}
		if _, ok := nodes[i].node.placementOf("shipped"); !ok {
			t.Fatalf("node %d has the graph but no placement descriptor", i)
		}
	}
	if out := nodes[0].node.RouterStats().PlacementsOut; out != 2 {
		t.Fatalf("coordinator shipped %d segments, want 2", out)
	}
}
