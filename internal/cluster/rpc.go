package cluster

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// The wire protocol is deliberately thin, per the Kademlia reference: every
// message is one length-prefixed JSON envelope carrying Type, the sender's
// identity (name + *advertised* address, never the bind address), a MsgID,
// and a type-specific body. Requests and responses correlate by MsgID: the
// sender parks a waiter in an inflight map and a single read loop per
// connection delivers matching envelopes into it — the reader never blocks
// on a dead consumer (each waiter carries an abandonment signal), and no
// goroutine ever touches the network while holding a map lock. Streaming
// responses (SCATTER-JOIN) are just many envelopes with one MsgID.

// Message types.
const (
	msgPing = "ping" // liveness + membership gossip
	msgPong = "pong"

	msgPlace   = "place" // ship a segment + placement to an owner
	msgPlaceOK = "place.ok"
	msgFetch   = "fetch" // pull a graph's segment from a peer
	msgFetchOK = "fetch.ok"

	msgScatter       = "scatter"        // open a shard-side join stream
	msgScatterLine   = "scatter.line"   // one rank-ordered result of the shard stream
	msgScatterDone   = "scatter.done"   // shard stream terminator (exhaustion or error)
	msgScatterMore   = "scatter.more"   // flow-control credit, coordinator → shard
	msgScatterCancel = "scatter.cancel" // stop a shard stream early

	msgError = "error" // request-level failure
)

// Envelope is the wire frame payload.
type Envelope struct {
	Type  string          `json:"type"`
	Node  string          `json:"node,omitempty"` // sender's stable name
	From  string          `json:"from,omitempty"` // sender's advertised address (announce, not bind)
	MsgID uint64          `json:"msg_id"`
	Body  json.RawMessage `json:"body,omitempty"`
}

// errorBody is the msgError payload.
type errorBody struct {
	Message string `json:"message"`
}

// maxFrame bounds one envelope frame. Segment shipping dominates; the limit
// matches the HTTP layer's graph-upload bound.
const maxFrame = 256 << 20

// writeFrame writes one length-prefixed envelope. Callers serialize writes
// per connection (writeMu); the deadline bounds a stalled peer.
func writeFrame(c net.Conn, timeout time.Duration, env *Envelope) error {
	b, err := json.Marshal(env)
	if err != nil {
		return err
	}
	if len(b) > maxFrame {
		return fmt.Errorf("cluster: frame too large (%d bytes)", len(b))
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(b)))
	if timeout > 0 {
		_ = c.SetWriteDeadline(time.Now().Add(timeout))
		defer c.SetWriteDeadline(time.Time{}) //nolint:errcheck // best effort
	}
	if _, err := c.Write(hdr[:]); err != nil {
		return err
	}
	_, err = c.Write(b)
	return err
}

// readFrame reads one envelope; io.EOF means a clean close.
func readFrame(c net.Conn) (*Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("cluster: oversized frame (%d bytes)", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(c, b); err != nil {
		return nil, err
	}
	var env Envelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, fmt.Errorf("cluster: bad envelope: %w", err)
	}
	return &env, nil
}

// waiter receives the envelopes of one MsgID. The buffered channel absorbs
// a stream burst; gone is closed when the caller abandons the exchange so
// the read loop can never block forever on it.
type waiter struct {
	ch   chan *Envelope
	gone chan struct{}
	once sync.Once
}

func newWaiter(buf int) *waiter {
	return &waiter{ch: make(chan *Envelope, buf), gone: make(chan struct{})}
}

func (w *waiter) abandon() { w.once.Do(func() { close(w.gone) }) }

// peerConn is one outbound connection: a write-serialized conn, an inflight
// map, and the single read loop draining it.
type peerConn struct {
	addr    string
	c       net.Conn
	writeMu sync.Mutex

	mu       sync.Mutex
	inflight map[uint64]*waiter
	err      error
	dead     chan struct{}

	nextID atomic.Uint64
}

// register parks a waiter for id; fails once the conn is dead.
func (pc *peerConn) register(id uint64, w *waiter) error {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.err != nil {
		return pc.err
	}
	pc.inflight[id] = w
	return nil
}

// unregister drops id's waiter and marks it abandoned.
func (pc *peerConn) unregister(id uint64) {
	pc.mu.Lock()
	w := pc.inflight[id]
	delete(pc.inflight, id)
	pc.mu.Unlock()
	if w != nil {
		w.abandon()
	}
}

// fail terminates the connection: every parked waiter learns the error via
// the closed dead channel, and future registers are refused.
func (pc *peerConn) fail(err error) {
	pc.mu.Lock()
	if pc.err == nil {
		pc.err = err
		close(pc.dead)
	}
	waiters := pc.inflight
	pc.inflight = make(map[uint64]*waiter)
	pc.mu.Unlock()
	for _, w := range waiters {
		w.abandon()
	}
	_ = pc.c.Close()
}

// readLoop is the connection's single reader: it parses envelopes and
// delivers each to its MsgID's waiter (dropping unmatched ones — late
// replies to abandoned exchanges). It never blocks on an abandoned waiter
// and holds no lock across channel sends.
func (pc *peerConn) readLoop() {
	for {
		env, err := readFrame(pc.c)
		if err != nil {
			pc.fail(fmt.Errorf("cluster: connection to %s lost: %w", pc.addr, err))
			return
		}
		pc.mu.Lock()
		w := pc.inflight[env.MsgID]
		pc.mu.Unlock()
		if w == nil {
			continue
		}
		select {
		case w.ch <- env:
		case <-w.gone:
		}
	}
}

// send marshals and writes one envelope (write-serialized).
func (pc *peerConn) send(timeout time.Duration, env *Envelope) error {
	pc.writeMu.Lock()
	defer pc.writeMu.Unlock()
	if err := writeFrame(pc.c, timeout, env); err != nil {
		pc.fail(err)
		return err
	}
	return nil
}

// Transport manages outbound connections and request correlation for one
// node. All methods are safe for concurrent use; no method performs network
// I/O while holding the transport lock.
type Transport struct {
	self        Member
	dialTimeout time.Duration
	rpcTimeout  time.Duration

	mu     sync.Mutex
	conns  map[string]*peerConn
	closed bool
}

// newTransport sizes a transport for self.
func newTransport(self Member, dialTimeout, rpcTimeout time.Duration) *Transport {
	if dialTimeout <= 0 {
		dialTimeout = 2 * time.Second
	}
	if rpcTimeout <= 0 {
		rpcTimeout = 5 * time.Second
	}
	return &Transport{self: self, dialTimeout: dialTimeout, rpcTimeout: rpcTimeout,
		conns: make(map[string]*peerConn)}
}

// Close tears down every connection.
func (t *Transport) Close() {
	t.mu.Lock()
	conns := t.conns
	t.conns = make(map[string]*peerConn)
	t.closed = true
	t.mu.Unlock()
	for _, pc := range conns {
		pc.fail(errors.New("cluster: transport closed"))
	}
}

// peer returns (dialing if needed) the connection to addr. The dial runs
// outside the lock; a lost race keeps the winner's connection.
func (t *Transport) peer(addr string) (*peerConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, errors.New("cluster: transport closed")
	}
	pc := t.conns[addr]
	if pc != nil {
		select {
		case <-pc.dead:
			delete(t.conns, addr) // stale; redial below
			pc = nil
		default:
		}
	}
	t.mu.Unlock()
	if pc != nil {
		return pc, nil
	}
	c, err := net.DialTimeout("tcp", addr, t.dialTimeout)
	if err != nil {
		return nil, err
	}
	fresh := &peerConn{addr: addr, c: c, inflight: make(map[uint64]*waiter), dead: make(chan struct{})}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		_ = c.Close()
		return nil, errors.New("cluster: transport closed")
	}
	if prev := t.conns[addr]; prev != nil {
		alive := true
		select {
		case <-prev.dead:
			alive = false
		default:
		}
		if alive {
			t.mu.Unlock()
			_ = c.Close() // lost the dial race
			return prev, nil
		}
	}
	t.conns[addr] = fresh
	t.mu.Unlock()
	go fresh.readLoop()
	return fresh, nil
}

// envelope stamps a fresh request envelope with the sender identity.
func (t *Transport) envelope(pc *peerConn, typ string, body any) (*Envelope, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	return &Envelope{Type: typ, Node: t.self.Name, From: t.self.Addr,
		MsgID: pc.nextID.Add(1), Body: raw}, nil
}

// Call performs one request/response exchange with addr under the per-RPC
// timeout (and ctx). A msgError response surfaces as an error; any other
// response type is decoded into reply (when non-nil).
func (t *Transport) Call(ctx context.Context, addr, typ string, body, reply any) error {
	pc, err := t.peer(addr)
	if err != nil {
		return err
	}
	env, err := t.envelope(pc, typ, body)
	if err != nil {
		return err
	}
	w := newWaiter(1)
	if err := pc.register(env.MsgID, w); err != nil {
		return err
	}
	defer pc.unregister(env.MsgID)
	if err := pc.send(t.rpcTimeout, env); err != nil {
		return err
	}
	timer := time.NewTimer(t.rpcTimeout)
	defer timer.Stop()
	select {
	case resp := <-w.ch:
		return decodeReply(resp, reply)
	case <-pc.dead:
		pc.mu.Lock()
		err := pc.err
		pc.mu.Unlock()
		return err
	case <-timer.C:
		return fmt.Errorf("cluster: %s rpc to %s timed out after %s", typ, addr, t.rpcTimeout)
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// decodeReply maps a response envelope onto reply.
func decodeReply(resp *Envelope, reply any) error {
	if resp.Type == msgError {
		var eb errorBody
		_ = json.Unmarshal(resp.Body, &eb)
		return fmt.Errorf("cluster: remote error: %s", eb.Message)
	}
	if reply == nil {
		return nil
	}
	return json.Unmarshal(resp.Body, reply)
}

// streamBuf is the per-stream waiter buffer: large enough to absorb a full
// flow-control window plus terminators without ever blocking the read loop
// in practice.
const streamBuf = 4 * scatterWindow

// RPCStream is one open streaming exchange (SCATTER-JOIN): envelopes of the
// request's MsgID arrive in order through Recv until the caller closes it.
type RPCStream struct {
	t    *Transport
	pc   *peerConn
	id   uint64
	w    *waiter
	once sync.Once
}

// OpenStream sends a request whose response is a stream of envelopes.
func (t *Transport) OpenStream(addr, typ string, body any) (*RPCStream, error) {
	pc, err := t.peer(addr)
	if err != nil {
		return nil, err
	}
	env, err := t.envelope(pc, typ, body)
	if err != nil {
		return nil, err
	}
	w := newWaiter(streamBuf)
	if err := pc.register(env.MsgID, w); err != nil {
		return nil, err
	}
	if err := pc.send(t.rpcTimeout, env); err != nil {
		pc.unregister(env.MsgID)
		return nil, err
	}
	return &RPCStream{t: t, pc: pc, id: env.MsgID, w: w}, nil
}

// Recv waits for the stream's next envelope under the per-RPC timeout: a
// live stream must produce *something* (a line, a terminator) within it.
func (s *RPCStream) Recv(ctx context.Context) (*Envelope, error) {
	timer := time.NewTimer(s.t.rpcTimeout)
	defer timer.Stop()
	select {
	case env := <-s.w.ch:
		return env, nil
	case <-s.pc.dead:
		s.pc.mu.Lock()
		err := s.pc.err
		s.pc.mu.Unlock()
		return nil, err
	case <-timer.C:
		return nil, fmt.Errorf("cluster: shard stream from %s stalled past %s", s.pc.addr, s.t.rpcTimeout)
	case <-ctx.Done():
		return nil, context.Cause(ctx)
	}
}

// Send transmits a mid-stream message (flow-control credit) under the
// stream's MsgID.
func (s *RPCStream) Send(typ string, body any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return s.pc.send(s.t.rpcTimeout, &Envelope{Type: typ, Node: s.t.self.Name,
		From: s.t.self.Addr, MsgID: s.id, Body: raw})
}

// Close abandons the stream: a best-effort cancel tells the shard to stop
// producing, and the waiter is unregistered so late envelopes are dropped.
// Idempotent.
func (s *RPCStream) Close() {
	s.once.Do(func() {
		_ = s.pc.send(s.t.rpcTimeout, &Envelope{Type: msgScatterCancel, Node: s.t.self.Name,
			From: s.t.self.Addr, MsgID: s.id})
		s.pc.unregister(s.id)
	})
}

// Replier writes responses for one server-side connection, sharing its
// write serialization.
type Replier struct {
	c       net.Conn
	writeMu *sync.Mutex
	self    Member
	timeout time.Duration
}

// Reply sends one envelope of the given type under msgID.
func (r *Replier) Reply(msgID uint64, typ string, body any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	r.writeMu.Lock()
	defer r.writeMu.Unlock()
	return writeFrame(r.c, r.timeout, &Envelope{Type: typ, Node: r.self.Name,
		From: r.self.Addr, MsgID: msgID, Body: raw})
}

// ReplyError sends a msgError response.
func (r *Replier) ReplyError(msgID uint64, err error) {
	_ = r.Reply(msgID, msgError, errorBody{Message: err.Error()})
}
