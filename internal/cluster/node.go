package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dht"
	"repro/internal/graph"
	"repro/internal/service"
	"repro/internal/store"
)

// scatterWindow is the default flow-control window of a shard stream: the
// shard may run at most this many lines ahead of the coordinator's
// acknowledged consumption, which bounds the work a corner-bound early stop
// can waste shard-side. The coordinator replenishes credit at half-window
// consumption, so a fully drained stream never stalls on credit.
const scatterWindow = 64

// Config sizes one cluster node.
type Config struct {
	// Name is the node's stable identity; its sha1 is the ring position, so
	// renaming a node moves it on the ring.
	Name string
	// Bind is the listen address for the cluster RPC port.
	Bind string
	// Advertise is the address peers are told to reach this node at; empty
	// selects the bound listener's address. Split from Bind for NAT and
	// container setups where the two differ.
	Advertise string
	// Replicas is K: each placement key lives on the K XOR-closest nodes.
	// 0 selects 2.
	Replicas int
	// Alpha bounds the scatter/placement fan-out concurrency. 0 selects 3.
	Alpha int
	// Service executes shard-local joins and registers placed graphs.
	Service *service.Service
	// DialTimeout/RPCTimeout bound peer dials and individual RPC exchanges
	// (a streaming exchange must produce its next envelope within
	// RPCTimeout). 0 selects 2s / 5s.
	DialTimeout time.Duration
	RPCTimeout  time.Duration
}

// placement records how one graph is sharded: the query-side node space
// [0, Nodes) splits into Parts contiguous ranges, and part i lives on the
// Replicas XOR-closest nodes to its placement key. Every holder stores the
// same descriptor, so any of them can coordinate.
type placement struct {
	Parts    int `json:"parts"`
	Replicas int `json:"replicas"`
	Nodes    int `json:"nodes"`
}

// partKey names one placement key on the ring.
func partKey(graphName string, part int) string {
	return fmt.Sprintf("%s/part-%d", graphName, part)
}

// Node is one cluster participant: it serves the RPC port (scatter requests,
// placement, pings) and coordinates scatter queries for graphs it holds a
// placement for, via the service.Router seam.
type Node struct {
	cfg  Config
	self Member
	ring *Ring
	tr   *Transport
	svc  *service.Service
	ln   net.Listener

	ctx    context.Context // node lifetime; cancelled by Close
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu         sync.Mutex
	placements map[string]placement
	closed     bool

	// Counters behind service.RouterStats.
	scatterQueries atomic.Int64
	shardStreams   atomic.Int64
	earlyStops     atomic.Int64
	failovers      atomic.Int64
	scatterServed  atomic.Int64
	placementsOut  atomic.Int64
	placementsIn   atomic.Int64
}

// Start binds the RPC listener and begins serving. The node knows only
// itself until Join (or inbound pings) populate the ring.
func Start(cfg Config) (*Node, error) {
	if cfg.Service == nil {
		return nil, fmt.Errorf("cluster: node needs a service")
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 2
	}
	if cfg.Alpha < 1 {
		cfg.Alpha = 3
	}
	ln, err := net.Listen("tcp", cfg.Bind)
	if err != nil {
		return nil, err
	}
	adv := cfg.Advertise
	if adv == "" {
		adv = ln.Addr().String()
	}
	if cfg.Name == "" {
		// No explicit identity: the advertised address doubles as the stable
		// name — restart-stable for as long as the address is.
		cfg.Name = adv
	}
	self := Member{Name: cfg.Name, Addr: adv}
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{
		cfg:        cfg,
		self:       self,
		ring:       NewRing(),
		tr:         newTransport(self, cfg.DialTimeout, cfg.RPCTimeout),
		svc:        cfg.Service,
		ln:         ln,
		ctx:        ctx,
		cancel:     cancel,
		placements: make(map[string]placement),
	}
	n.ring.Upsert(self)
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Self returns the node's advertised identity.
func (n *Node) Self() Member { return n.self }

// Ring exposes the membership view (for /cluster and tests).
func (n *Node) Ring() *Ring { return n.ring }

// Addr returns the bound listener address (which Advertise defaults to).
func (n *Node) Addr() string { return n.ln.Addr().String() }

// Close stops serving: the listener closes, in-flight shard work is
// cancelled, and outbound connections are torn down.
func (n *Node) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	n.cancel()
	_ = n.ln.Close()
	n.tr.Close()
	n.wg.Wait()
}

// Join announces the node to each seed peer and adopts the membership the
// seeds report back. Membership is static-plus-gossip: every inbound request
// also upserts its sender, so seeds learn joiners symmetrically. Seeds that
// refuse are retried until ctx expires: nodes of one deployment start
// concurrently, and a seed's listener coming up a beat later must not cost
// the joiner its membership (a missed join would otherwise persist — gossip
// is inbound-driven, so an unknown node hears nothing).
func (n *Node) Join(ctx context.Context, peers []string) error {
	pending := make([]string, 0, len(peers))
	for _, addr := range peers {
		if addr != "" && addr != n.self.Addr {
			pending = append(pending, addr)
		}
	}
	var lastErr error
	for len(pending) > 0 {
		retry := pending[:0]
		for _, addr := range pending {
			var pong pongBody
			if err := n.tr.Call(ctx, addr, msgPing, pingBody{}, &pong); err != nil {
				lastErr = fmt.Errorf("cluster: join via %s: %w", addr, err)
				retry = append(retry, addr)
				continue
			}
			for _, m := range pong.Members {
				n.ring.Upsert(m)
			}
		}
		if len(retry) == 0 {
			return nil
		}
		pending = retry
		select {
		case <-ctx.Done():
			return lastErr
		case <-n.ctx.Done():
			return lastErr
		case <-time.After(250 * time.Millisecond):
		}
	}
	return nil
}

// RouterStats snapshots the node's counters in the service's schema.
func (n *Node) RouterStats() service.RouterStats {
	return service.RouterStats{
		ScatterQueries:  n.scatterQueries.Load(),
		ShardStreams:    n.shardStreams.Load(),
		ShardEarlyStops: n.earlyStops.Load(),
		Failovers:       n.failovers.Load(),
		ScatterServed:   n.scatterServed.Load(),
		PlacementsOut:   n.placementsOut.Load(),
		PlacementsIn:    n.placementsIn.Load(),
	}
}

// placementOf returns the graph's placement descriptor, if this node holds
// one.
func (n *Node) placementOf(graphName string) (placement, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	pl, ok := n.placements[graphName]
	return pl, ok
}

func (n *Node) setPlacement(graphName string, pl placement) {
	n.mu.Lock()
	n.placements[graphName] = pl
	n.mu.Unlock()
}

// Placements lists the graphs this node holds placement descriptors for.
func (n *Node) Placements() map[string]struct{ Parts, Replicas, Nodes int } {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make(map[string]struct{ Parts, Replicas, Nodes int }, len(n.placements))
	for name, pl := range n.placements {
		out[name] = struct{ Parts, Replicas, Nodes int }{pl.Parts, pl.Replicas, pl.Nodes}
	}
	return out
}

// PlaceGraph shards the locally loaded graph across the ring: the node space
// splits into parts ranges, part i's placement key owns the Replicas
// XOR-closest members, and every owner receives the graph's full segment
// (shards need the whole graph — walk scores traverse it — so partitioning
// applies to the query-side candidate space, not the edges) plus the
// placement descriptor. Shipping fans out α-parallel. parts < 1 selects the
// current ring size; replicas < 1 selects the node default.
func (n *Node) PlaceGraph(ctx context.Context, graphName string, parts, replicas int) error {
	if parts < 1 {
		parts = n.ring.Len()
	}
	if replicas < 1 {
		replicas = n.cfg.Replicas
	}
	g, sets, gen, err := n.svc.GraphData(graphName)
	if err != nil {
		return err
	}
	pl := placement{Parts: parts, Replicas: replicas, Nodes: g.NumNodes()}
	// Dedupe owners across parts: each target node receives one segment no
	// matter how many parts it owns.
	targets := make(map[string]Member)
	for i := 0; i < parts; i++ {
		for _, m := range n.ring.Owners(partKey(graphName, i), replicas) {
			if m.Name != n.self.Name {
				targets[m.Name] = m
			}
		}
	}
	n.setPlacement(graphName, pl)
	if len(targets) == 0 {
		return nil
	}
	seg := store.EncodeSegment(graphName, gen, g, sets)
	body := placeBody{Graph: graphName, Parts: parts, Replicas: replicas, Segment: seg}
	sem := make(chan struct{}, n.cfg.Alpha)
	errs := make(chan error, len(targets))
	for _, m := range targets {
		sem <- struct{}{}
		go func(m Member) {
			defer func() { <-sem }()
			var ok placeOKBody
			if err := n.tr.Call(ctx, m.Addr, msgPlace, body, &ok); err != nil {
				errs <- fmt.Errorf("cluster: place %s on %s: %w", graphName, m.Name, err)
				return
			}
			n.placementsOut.Add(1)
			errs <- nil
		}(m)
	}
	for range targets {
		if err := <-errs; err != nil {
			return err
		}
	}
	return nil
}

// FetchGraph pulls a placed graph's segment and placement from a peer and
// registers both locally — how a node outside a graph's owner set becomes
// able to coordinate queries for it.
func (n *Node) FetchGraph(ctx context.Context, peerAddr, graphName string) error {
	var resp fetchOKBody
	if err := n.tr.Call(ctx, peerAddr, msgFetch, fetchBody{Graph: graphName}, &resp); err != nil {
		return err
	}
	return n.adoptSegment(graphName, resp.Parts, resp.Replicas, resp.Segment)
}

// adoptSegment decodes, registers, and records a shipped graph.
func (n *Node) adoptSegment(graphName string, parts, replicas int, seg []byte) error {
	dec, err := store.DecodeSegment(seg)
	if err != nil {
		return err
	}
	if err := n.svc.LoadGraph(graphName, dec.Graph, dec.Sets); err != nil {
		return err
	}
	n.setPlacement(graphName, placement{Parts: parts, Replicas: replicas, Nodes: dec.Graph.NumNodes()})
	n.placementsIn.Add(1)
	return nil
}

// Wire bodies.

type pingBody struct{}

type pongBody struct {
	Members []Member `json:"members"`
}

type placeBody struct {
	Graph    string `json:"graph"`
	Parts    int    `json:"parts"`
	Replicas int    `json:"replicas"`
	Segment  []byte `json:"segment"` // store segment image (base64 on the wire)
}

type placeOKBody struct {
	Nodes int `json:"nodes"`
}

type fetchBody struct {
	Graph string `json:"graph"`
}

type fetchOKBody struct {
	Parts    int    `json:"parts"`
	Replicas int    `json:"replicas"`
	Segment  []byte `json:"segment"`
}

// queryWire ships the join parameters that determine the ranking. It must
// round-trip every field bit-exactly (floats survive Go's JSON shortest-
// representation encoding) or shards would compute a different ranking than
// the coordinator's local evaluation. The n-way-only knobs (Agg) do not
// travel: scatter serves 2-way joins only.
type queryWire struct {
	Alpha      float64 `json:"alpha"`
	Beta       float64 `json:"beta"`
	Lambda     float64 `json:"lambda"`
	Epsilon    float64 `json:"epsilon,omitempty"`
	D          int     `json:"d,omitempty"`
	Measure    int     `json:"measure,omitempty"`
	M          int     `json:"m,omitempty"`
	Workers    int     `json:"workers,omitempty"`
	BatchWidth int     `json:"batch_width,omitempty"`
	Relabel    int     `json:"relabel,omitempty"`
	Algorithm  string  `json:"algorithm,omitempty"`
	Accuracy   string  `json:"accuracy,omitempty"`
	Tenant     string  `json:"tenant,omitempty"`
	Priority   int     `json:"priority,omitempty"`
	BudgetMS   int64   `json:"budget_ms,omitempty"`
}

func wireQuery(q service.Query) queryWire {
	return queryWire{
		Alpha: q.Params.Alpha, Beta: q.Params.Beta, Lambda: q.Params.Lambda,
		Epsilon: q.Epsilon, D: q.D, Measure: int(q.Measure), M: q.M,
		Workers: q.Workers, BatchWidth: q.BatchWidth, Relabel: int(q.Relabel),
		Algorithm: q.Algorithm, Accuracy: q.Accuracy,
		Tenant: q.Tenant, Priority: q.Priority, BudgetMS: q.Budget.Milliseconds(),
	}
}

func (w queryWire) toQuery() service.Query {
	return service.Query{
		Params:  dht.Params{Alpha: w.Alpha, Beta: w.Beta, Lambda: w.Lambda},
		Epsilon: w.Epsilon, D: w.D, Measure: dht.Kind(w.Measure), M: w.M,
		Workers: w.Workers, BatchWidth: w.BatchWidth, Relabel: graph.RelabelMode(w.Relabel),
		Algorithm: w.Algorithm, Accuracy: w.Accuracy,
		Tenant: w.Tenant, Priority: w.Priority,
		Budget: time.Duration(w.BudgetMS) * time.Millisecond,
	}
}

type scatterBody struct {
	Graph  string         `json:"graph"`
	P      []graph.NodeID `json:"p"` // already restricted to the part's range
	Q      []graph.NodeID `json:"q"`
	Query  queryWire      `json:"query"`
	Cursor int            `json:"cursor,omitempty"` // lines to skip (failover resume)
	Window int            `json:"window"`           // initial flow-control credit
}

type scatterLineBody struct {
	P     graph.NodeID `json:"p"`
	Q     graph.NodeID `json:"q"`
	Score float64      `json:"score"`
}

type scatterDoneBody struct {
	Count int    `json:"count"`         // lines emitted after the cursor skip
	Err   string `json:"err,omitempty"` // non-empty marks a failed stream
	// Retry marks Err as replica-local (the shard is draining or over its
	// admission quota): another replica may well serve the same part, so the
	// coordinator fails over instead of failing the query. Evaluation errors
	// leave it false — every replica would fail those identically.
	Retry bool `json:"retry,omitempty"`
}

type moreBody struct {
	N int `json:"n"`
}

// Server side.

// scatterState is one in-flight inbound scatter stream: credits arrive from
// the coordinator's scatter.more messages, cancel fires on scatter.cancel or
// connection loss.
type scatterState struct {
	credits chan int
	cancel  chan struct{}
	once    sync.Once
}

func (st *scatterState) stop() { st.once.Do(func() { close(st.cancel) }) }

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.ln.Accept()
		if err != nil {
			return // listener closed
		}
		n.wg.Add(1)
		go n.serveConn(c)
	}
}

// serveConn runs one inbound connection: a single read loop parses request
// envelopes, dispatches each handler onto its own goroutine, and routes
// mid-stream messages (credits, cancels) to their scatter state by MsgID.
func (n *Node) serveConn(c net.Conn) {
	defer n.wg.Done()
	defer c.Close() //nolint:errcheck // unblocks any in-flight writes
	var writeMu sync.Mutex
	rep := &Replier{c: c, writeMu: &writeMu, self: n.self, timeout: n.tr.rpcTimeout}
	var mu sync.Mutex
	streams := make(map[uint64]*scatterState)
	defer func() {
		mu.Lock()
		for _, st := range streams {
			st.stop()
		}
		mu.Unlock()
	}()
	stop := context.AfterFunc(n.ctx, func() { _ = c.Close() })
	defer stop()
	var hwg sync.WaitGroup
	defer hwg.Wait()
	for {
		env, err := readFrame(c)
		if err != nil {
			return
		}
		// Pull gossip: every request identifies its sender.
		if env.Node != "" && env.From != "" && env.Node != n.self.Name {
			n.ring.Upsert(Member{Name: env.Node, Addr: env.From})
		}
		switch env.Type {
		case msgPing:
			hwg.Add(1)
			go func(id uint64) {
				defer hwg.Done()
				_ = rep.Reply(id, msgPong, pongBody{Members: n.ring.Members()})
			}(env.MsgID)
		case msgPlace:
			hwg.Add(1)
			go func(env *Envelope) {
				defer hwg.Done()
				n.handlePlace(rep, env)
			}(env)
		case msgFetch:
			hwg.Add(1)
			go func(env *Envelope) {
				defer hwg.Done()
				n.handleFetch(rep, env)
			}(env)
		case msgScatter:
			st := &scatterState{credits: make(chan int, 16), cancel: make(chan struct{})}
			mu.Lock()
			streams[env.MsgID] = st
			mu.Unlock()
			hwg.Add(1)
			go func(env *Envelope) {
				defer hwg.Done()
				n.handleScatter(rep, env, st)
				mu.Lock()
				delete(streams, env.MsgID)
				mu.Unlock()
			}(env)
		case msgScatterMore:
			var mb moreBody
			if json.Unmarshal(env.Body, &mb) == nil && mb.N > 0 {
				mu.Lock()
				st := streams[env.MsgID]
				mu.Unlock()
				if st != nil {
					select {
					case st.credits <- mb.N:
					case <-st.cancel:
					}
				}
			}
		case msgScatterCancel:
			mu.Lock()
			st := streams[env.MsgID]
			mu.Unlock()
			if st != nil {
				st.stop()
			}
		default:
			rep.ReplyError(env.MsgID, fmt.Errorf("unknown message type %q", env.Type))
		}
	}
}

func (n *Node) handlePlace(rep *Replier, env *Envelope) {
	var body placeBody
	if err := json.Unmarshal(env.Body, &body); err != nil {
		rep.ReplyError(env.MsgID, err)
		return
	}
	if err := n.adoptSegment(body.Graph, body.Parts, body.Replicas, body.Segment); err != nil {
		rep.ReplyError(env.MsgID, err)
		return
	}
	pl, _ := n.placementOf(body.Graph)
	_ = rep.Reply(env.MsgID, msgPlaceOK, placeOKBody{Nodes: pl.Nodes})
}

func (n *Node) handleFetch(rep *Replier, env *Envelope) {
	var body fetchBody
	if err := json.Unmarshal(env.Body, &body); err != nil {
		rep.ReplyError(env.MsgID, err)
		return
	}
	pl, ok := n.placementOf(body.Graph)
	if !ok {
		rep.ReplyError(env.MsgID, fmt.Errorf("no placement for graph %q", body.Graph))
		return
	}
	g, sets, gen, err := n.svc.GraphData(body.Graph)
	if err != nil {
		rep.ReplyError(env.MsgID, err)
		return
	}
	seg := store.EncodeSegment(body.Graph, gen, g, sets)
	_ = rep.Reply(env.MsgID, msgFetchOK, fetchOKBody{Parts: pl.Parts, Replicas: pl.Replicas, Segment: seg})
}

// handleScatter executes one shard-local join and streams its rank-ordered
// results back under the request's MsgID. Routing is disabled for the local
// evaluation (the request was already routed once — a shard re-scattering
// its own part would recurse). The stream advances only under coordinator
// credit, and stops on cancel, node shutdown, or a dead connection.
func (n *Node) handleScatter(rep *Replier, env *Envelope, st *scatterState) {
	var body scatterBody
	if err := json.Unmarshal(env.Body, &body); err != nil {
		rep.ReplyError(env.MsgID, err)
		return
	}
	n.scatterServed.Add(1)
	query := body.Query.toQuery()
	if err := query.Validate(); err != nil {
		_ = rep.Reply(env.MsgID, msgScatterDone, scatterDoneBody{Err: err.Error()})
		return
	}
	ctx, cancel := context.WithCancel(service.WithoutRouting(n.ctx))
	defer cancel()
	stream, err := n.svc.OpenJoin2(ctx, body.Graph,
		service.SetRef{IDs: body.P}, service.SetRef{IDs: body.Q}, query)
	if err != nil {
		// A draining or quota-saturated replica is a fact about this node,
		// not the query: tell the coordinator to try the next replica.
		retry := errors.Is(err, service.ErrDraining) || errors.Is(err, service.ErrQuotaExceeded)
		_ = rep.Reply(env.MsgID, msgScatterDone, scatterDoneBody{Err: err.Error(), Retry: retry})
		return
	}
	defer stream.Stop()
	// Failover resume: the replacement shard recomputes the identical
	// ranking (bit-identical streams are the system invariant), so skipping
	// Cursor lines resumes exactly where the dead replica stopped.
	for i := 0; i < body.Cursor; i++ {
		if _, ok, err := stream.Next(); err != nil || !ok {
			var done scatterDoneBody
			if err != nil {
				done.Err = err.Error()
			}
			_ = rep.Reply(env.MsgID, msgScatterDone, done)
			return
		}
	}
	credit := body.Window
	if credit < 1 {
		credit = scatterWindow
	}
	count := 0
	for {
		for credit == 0 {
			select {
			case nmore := <-st.credits:
				credit += nmore
			case <-st.cancel:
				return
			case <-n.ctx.Done():
				return
			}
		}
		r, ok, err := stream.Next()
		if err != nil {
			_ = rep.Reply(env.MsgID, msgScatterDone, scatterDoneBody{Count: count, Err: err.Error()})
			return
		}
		if !ok {
			_ = rep.Reply(env.MsgID, msgScatterDone, scatterDoneBody{Count: count})
			return
		}
		select {
		case <-st.cancel:
			return
		default:
		}
		line := scatterLineBody{P: r.Pair.P, Q: r.Pair.Q, Score: r.Score}
		if rep.Reply(env.MsgID, msgScatterLine, line) != nil {
			return // connection gone; the coordinator has failed over
		}
		count++
		credit--
	}
}
