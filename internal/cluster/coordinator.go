package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/graph"
	"repro/internal/join2"
	"repro/internal/service"
)

// This file is the coordinator: Node implements service.Router, so a 2-way
// join against a placed graph scatters to the live replica of every part
// (α-parallel) and merges the per-shard rank-ordered streams through the
// rank-join corner bound. Each shard's bound is the score of its last
// consumed line (+Inf before the first): since shard streams are
// non-increasing, a shard whose bound is below the current best head cannot
// contribute the next global result and is simply not pulled — which is how
// the global top-k stops shard streams early instead of draining the full
// O(|P|·|Q|) ranking of every part. Merging is bit-identical to the local
// evaluation because every stream orders by (score desc, TieKey asc), the
// parts partition the candidate space, and scores are position-independent
// (each shard walks the full replicated graph).

// RouteJoin2 implements service.Router. It claims the request when this
// node holds a placement for the graph and at least one part lives on a
// peer; anything else (unplaced graphs, single-node rings, all parts local)
// declines, leaving the service's local path — result cache included —
// untouched.
func (n *Node) RouteJoin2(ctx context.Context, graphName string, p, q service.SetRef, query service.Query) (join2.Stream, bool, error) {
	pl, ok := n.placementOf(graphName)
	if !ok {
		return nil, false, nil
	}
	pids, err := n.svc.ResolveSet(graphName, p)
	if err != nil {
		return nil, true, err
	}
	qids, err := n.svc.ResolveSet(graphName, q)
	if err != nil {
		return nil, true, err
	}
	ranges, err := graph.PartitionRanges(pl.Nodes, pl.Parts)
	if err != nil {
		return nil, true, err
	}
	// Split the parts between this node and peers. Every part whose owner
	// set includes self runs locally — and all such parts collapse into ONE
	// local stream (their P ids concatenate; the union of parts yields the
	// same ranking as merging them separately, at one admission grant
	// instead of several).
	var localP []graph.NodeID
	var shards []*shard
	for i, r := range ranges {
		part := graph.FilterRange(pids, r)
		if len(part) == 0 {
			continue
		}
		owners := n.ring.Owners(partKey(graphName, i), pl.Replicas)
		if hasMemberName(owners, n.self.Name) {
			localP = append(localP, part...)
			continue
		}
		if len(owners) == 0 {
			return nil, true, fmt.Errorf("cluster: no owners for %s", partKey(graphName, i))
		}
		shards = append(shards, &shard{
			n: n, graph: graphName, part: i, owners: owners,
			pids: part, qids: qids, query: query, bound: math.Inf(1),
		})
	}
	if len(shards) == 0 {
		// Everything is local: the plain path serves it better.
		return nil, false, nil
	}
	if len(localP) > 0 {
		shards = append(shards, &shard{
			n: n, graph: graphName, part: -1, local: true,
			pids: localP, qids: qids, query: query, bound: math.Inf(1),
		})
	}
	n.scatterQueries.Add(1)
	return &mergedStream{n: n, ctx: ctx, shards: shards, alpha: n.cfg.Alpha}, true, nil
}

func hasMemberName(ms []Member, name string) bool {
	for _, m := range ms {
		if m.Name == name {
			return true
		}
	}
	return false
}

// shard is one rank-ordered source of the merge: either a remote part
// (streamed over RPC from its live replica, with failover down the owner
// list) or the combined local parts (a direct service stream).
type shard struct {
	n     *Node
	graph string
	part  int // -1 for the combined local shard
	local bool

	pids, qids []graph.NodeID
	query      service.Query

	// Remote state.
	owners      []Member
	ownerIdx    int
	rs          *RPCStream
	sinceCredit int

	// Local state.
	ls *service.Join2Stream

	started   bool
	head      join2.Result
	hasHead   bool
	bound     float64 // next-possible score: +Inf before the first line
	consumed  int     // lines pulled — the failover resume cursor
	exhausted bool
}

// next pulls the shard's next result into head. exhausted is sticky; an
// error is terminal (for remote shards, only after failover ran out of
// replicas).
func (sh *shard) next(ctx context.Context) error {
	if sh.exhausted || sh.hasHead {
		return nil
	}
	if sh.local {
		return sh.nextLocal(ctx)
	}
	return sh.nextRemote(ctx)
}

func (sh *shard) nextLocal(ctx context.Context) error {
	if sh.ls == nil {
		st, err := sh.n.svc.OpenJoin2(service.WithoutRouting(ctx), sh.graph,
			service.SetRef{IDs: sh.pids}, service.SetRef{IDs: sh.qids}, sh.query)
		if err != nil {
			return err
		}
		sh.ls = st
		sh.started = true
		sh.n.shardStreams.Add(1)
	}
	r, ok, err := sh.ls.Next()
	if err != nil {
		return err
	}
	if !ok {
		sh.exhausted = true
		return nil
	}
	sh.head, sh.hasHead = r, true
	sh.consumed++
	return nil
}

// nextRemote pulls one line from the part's live replica, failing over down
// the owner list on connection loss or stream error. The replacement shard
// resumes at Cursor=consumed: it recomputes the same bit-identical ranking,
// so the skip lands exactly where the dead replica stopped.
func (sh *shard) nextRemote(ctx context.Context) error {
	for {
		if sh.rs == nil {
			if sh.ownerIdx >= len(sh.owners) {
				return fmt.Errorf("cluster: all %d replicas of %s failed",
					len(sh.owners), partKey(sh.graph, sh.part))
			}
			owner := sh.owners[sh.ownerIdx]
			rs, err := sh.n.tr.OpenStream(owner.Addr, msgScatter, scatterBody{
				Graph: sh.graph, P: sh.pids, Q: sh.qids, Query: wireQuery(sh.query),
				Cursor: sh.consumed, Window: scatterWindow,
			})
			if err != nil {
				sh.failover(nil)
				continue
			}
			sh.rs = rs
			sh.started = true
			sh.sinceCredit = 0
			sh.n.shardStreams.Add(1)
		}
		env, err := sh.rs.Recv(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return context.Cause(ctx)
			}
			sh.failover(sh.rs)
			continue
		}
		switch env.Type {
		case msgScatterLine:
			var line scatterLineBody
			if err := json.Unmarshal(env.Body, &line); err != nil {
				return fmt.Errorf("cluster: bad scatter line: %w", err)
			}
			sh.head = join2.Result{Pair: join2.Pair{P: line.P, Q: line.Q}, Score: line.Score}
			sh.hasHead = true
			sh.consumed++
			sh.sinceCredit++
			// Replenish the shard's window at half consumption so a stream
			// being drained never stalls on credit, while an early-stopped
			// stream wastes at most ~1.5 windows of shard work.
			if sh.sinceCredit >= scatterWindow/2 {
				_ = sh.rs.Send(msgScatterMore, moreBody{N: sh.sinceCredit})
				sh.sinceCredit = 0
			}
			return nil
		case msgScatterDone:
			var done scatterDoneBody
			_ = json.Unmarshal(env.Body, &done)
			sh.rs.Close()
			sh.rs = nil
			if done.Err != "" {
				if done.Retry {
					// Replica-local refusal (draining, quota): the next
					// replica may serve the part fine.
					sh.failover(nil)
					continue
				}
				// The shard's own evaluation failed (bad query, shard-side
				// budget): every replica would fail identically, so this is
				// terminal, not a failover.
				return errors.New(done.Err)
			}
			sh.exhausted = true
			return nil
		default:
			// Unknown mid-stream type: ignore (forward compatibility).
		}
	}
}

// failover abandons the current replica and advances to the next.
func (sh *shard) failover(rs *RPCStream) {
	if rs != nil {
		rs.Close()
		sh.rs = nil
	}
	sh.ownerIdx++
	sh.n.failovers.Add(1)
}

// release closes the shard's stream, counting an early stop if the stream
// had started but was not drained.
func (sh *shard) release() {
	if sh.started && !sh.exhausted {
		sh.n.earlyStops.Add(1)
	}
	if sh.rs != nil {
		sh.rs.Close()
		sh.rs = nil
	}
	if sh.ls != nil {
		sh.ls.Stop()
		sh.ls = nil
	}
}

// mergedStream is the coordinator's join2.Stream: the τ-bounded lazy merge
// of the shard streams.
type mergedStream struct {
	n      *Node
	ctx    context.Context
	shards []*shard
	alpha  int

	primed   bool
	released bool
	mu       sync.Mutex // guards released vs concurrent Release
}

// prime opens every shard stream and pulls its first head, α-parallel: at
// most alpha shards are in flight at once. The merge cannot emit anything
// before every shard has reported a head or exhaustion (an unseen shard's
// bound is +Inf), so priming them concurrently is pure latency win.
func (m *mergedStream) prime() error {
	m.primed = true
	sem := make(chan struct{}, m.alpha)
	errs := make([]error, len(m.shards))
	var wg sync.WaitGroup
	for i, sh := range m.shards {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, sh *shard) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = sh.next(m.ctx)
		}(i, sh)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// better orders heads by (score desc, canonical tie key asc) — the exact
// emission order of every local stream.
func better(a, b join2.Result) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return join2.TieKey(a.Pair) < join2.TieKey(b.Pair)
}

// Next implements the corner-bound pull rule: find the best head; pull any
// headless shard whose bound could still beat or tie it (bound >= best
// score — a tying score can win on the tie key, so equality must be
// resolved by pulling); emit only when no un-pulled shard can contend.
func (m *mergedStream) Next() (join2.Result, bool, error) {
	if m.released {
		return join2.Result{}, false, nil
	}
	if !m.primed {
		if err := m.prime(); err != nil {
			return join2.Result{}, false, err
		}
	}
	for {
		var best *shard
		for _, sh := range m.shards {
			if sh.hasHead && (best == nil || better(sh.head, best.head)) {
				best = sh
			}
		}
		pulled := false
		for _, sh := range m.shards {
			if sh.exhausted || sh.hasHead {
				continue
			}
			if best != nil && sh.bound < best.head.Score {
				continue // the corner bound: this shard cannot contend yet
			}
			if err := sh.next(m.ctx); err != nil {
				return join2.Result{}, false, err
			}
			pulled = true
		}
		if pulled {
			continue
		}
		if best == nil {
			return join2.Result{}, false, nil // every shard exhausted
		}
		r := best.head
		best.hasHead = false
		best.bound = r.Score
		return r, true, nil
	}
}

// Release stops every shard stream (idempotent). Shards that had started
// but were not drained count as corner-bound early stops.
func (m *mergedStream) Release() {
	m.mu.Lock()
	if m.released {
		m.mu.Unlock()
		return
	}
	m.released = true
	m.mu.Unlock()
	for _, sh := range m.shards {
		sh.release()
	}
}
