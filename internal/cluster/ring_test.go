package cluster

import (
	"fmt"
	"testing"
)

func ringOf(names ...string) *Ring {
	r := NewRing()
	for _, n := range names {
		r.Upsert(Member{Name: n, Addr: "addr-" + n})
	}
	return r
}

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("graph-%d/part-%d", i%17, i)
	}
	return out
}

func TestOwnersDeterministicAndDistinct(t *testing.T) {
	r := ringOf("n0", "n1", "n2", "n3", "n4")
	for _, key := range keys(200) {
		a := r.Owners(key, 3)
		b := r.Owners(key, 3)
		if len(a) != 3 {
			t.Fatalf("key %q: got %d owners, want 3", key, len(a))
		}
		seen := map[string]bool{}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("key %q: owners not deterministic: %v vs %v", key, a, b)
			}
			if seen[a[i].Name] {
				t.Fatalf("key %q: duplicate member %q in replica set %v", key, a[i].Name, a)
			}
			seen[a[i].Name] = true
		}
	}
}

func TestOwnersClampAndOrder(t *testing.T) {
	r := ringOf("n0", "n1")
	if got := r.Owners("k", 5); len(got) != 2 {
		t.Fatalf("k beyond membership: got %d owners, want 2", len(got))
	}
	if got := r.Owners("k", 0); len(got) != 0 {
		t.Fatalf("k=0: got %v", got)
	}
	// Closest-first: the primary of Owners(k, 2) is Owners(k, 1)[0].
	for _, key := range keys(50) {
		one := r.Owners(key, 1)
		two := r.Owners(key, 2)
		if one[0] != two[0] {
			t.Fatalf("key %q: primary unstable across k: %v vs %v", key, one, two)
		}
	}
}

// A node joining must steal only the keys it now owns: every key whose
// replica set changed must include the new node in its new set.
func TestRebalanceOnJoin(t *testing.T) {
	const replicas = 2
	base := ringOf("n0", "n1", "n2", "n3", "n4", "n5", "n6", "n7")
	ks := keys(2000)
	before := make(map[string][]Member, len(ks))
	for _, k := range ks {
		before[k] = base.Owners(k, replicas)
	}
	base.Upsert(Member{Name: "n8", Addr: "addr-n8"})
	moved := 0
	for _, k := range ks {
		after := base.Owners(k, replicas)
		if !sameMembers(before[k], after) {
			moved++
			if !hasMember(after, "n8") {
				t.Fatalf("key %q moved (%v -> %v) without involving the joining node", k, before[k], after)
			}
		}
	}
	// Expected fraction ≈ replicas/members = 2/9; allow generous slack but
	// reject wholesale reshuffles (the classic mod-N failure moves ~8/9).
	frac := float64(moved) / float64(len(ks))
	if frac > 0.45 {
		t.Fatalf("join moved %.0f%% of keys — not a consistent-hash rebalance", frac*100)
	}
	if moved == 0 {
		t.Fatal("join moved no keys; the new node owns nothing")
	}
}

// A node leaving must disturb only the keys it served: keys whose replica
// set did not include the departed node keep their exact replica set.
func TestRebalanceOnLeave(t *testing.T) {
	const replicas = 3
	r := ringOf("n0", "n1", "n2", "n3", "n4", "n5", "n6", "n7", "n8")
	ks := keys(2000)
	before := make(map[string][]Member, len(ks))
	for _, k := range ks {
		before[k] = r.Owners(k, replicas)
	}
	r.Remove("n4")
	for _, k := range ks {
		after := r.Owners(k, replicas)
		if hasMember(before[k], "n4") {
			// Served keys keep their surviving replicas, in order, plus one
			// new member at the end.
			survivors := without(before[k], "n4")
			for i := range survivors {
				if after[i] != survivors[i] {
					t.Fatalf("key %q: surviving replicas reordered: %v -> %v", k, before[k], after)
				}
			}
			continue
		}
		if !sameMembers(before[k], after) {
			t.Fatalf("key %q not served by departed node but moved: %v -> %v", k, before[k], after)
		}
	}
}

// Same-name upsert must keep the ring position (id is a function of the
// name) while updating the address.
func TestUpsertKeepsPosition(t *testing.T) {
	r := ringOf("n0", "n1", "n2")
	ks := keys(300)
	before := make(map[string]string, len(ks))
	for _, k := range ks {
		before[k] = r.Owners(k, 1)[0].Name
	}
	r.Upsert(Member{Name: "n1", Addr: "addr-n1-restarted"})
	for _, k := range ks {
		got := r.Owners(k, 1)[0]
		if got.Name != before[k] {
			t.Fatalf("key %q changed owner after an address-only upsert: %s -> %s", k, before[k], got.Name)
		}
		if got.Name == "n1" && got.Addr != "addr-n1-restarted" {
			t.Fatalf("upsert did not propagate the new address: %+v", got)
		}
	}
}

func sameMembers(a, b []Member) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			return false
		}
	}
	return true
}

func hasMember(ms []Member, name string) bool {
	for _, m := range ms {
		if m.Name == name {
			return true
		}
	}
	return false
}

func without(ms []Member, name string) []Member {
	out := make([]Member, 0, len(ms))
	for _, m := range ms {
		if m.Name != name {
			out = append(out, m)
		}
	}
	return out
}
